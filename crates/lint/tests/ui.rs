//! Fixture-based UI tests: every lint gets at least one violating and one
//! clean snippet, plus allowlist- and inline-annotation-suppression
//! cases. Fixtures live under `tests/fixtures/` (skipped by the
//! workspace walker — they contain intentional violations) and are
//! checked here through [`custody_lint::check_source`] under fake
//! in-scope paths.

use custody_lint::config::parse;
use custody_lint::{check_source, lints, Config, Diagnostic};

/// A config exercising every lint, scoped to the fake paths the fixtures
/// are checked under.
fn fixture_config() -> Config {
    parse(
        r#"
        [lints.unordered-iteration]
        crates = ["core"]

        [[lints.unordered-iteration.allow]]
        path = "crates/core/src/allowed.rs"
        reason = "fixture: lookup-only map justified in the checked-in list"

        [lints.float-in-decision-path]
        files = ["crates/core/src/decision.rs"]

        [[lints.float-in-decision-path.allow]]
        path = "crates/core/src/decision.rs"
        item = "report_only"
        reason = "fixture: diagnostics-only float view"

        [lints.rng-discipline]
        crates = ["core"]

        [lints.wall-clock]
        crates = ["*"]

        [[lints.wall-clock.allow]]
        path = "crates/core/src/timer.rs"
        reason = "fixture: designated host-measurement site"

        [lints.no-panic]
        crates = ["core"]
        "#,
    )
    .expect("fixture config parses")
}

fn lints_hit(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.lint.as_str()).collect()
}

// --- unordered-iteration -------------------------------------------------

#[test]
fn unordered_bad_fixture_is_flagged() {
    let diags = check_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/unordered/bad.rs"),
        &fixture_config(),
    );
    assert!(!diags.is_empty(), "HashMap must be flagged");
    assert!(
        diags.iter().all(|d| d.lint == "unordered-iteration"),
        "{diags:?}"
    );
    // The `use` line is a violation and carries a file:line anchor.
    assert!(diags.iter().any(|d| d.line == 2), "{diags:?}");
}

#[test]
fn unordered_good_fixture_is_clean() {
    let diags = check_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/unordered/good.rs"),
        &fixture_config(),
    );
    assert!(
        diags.is_empty(),
        "BTreeMap and test-only HashSet: {diags:?}"
    );
}

#[test]
fn unordered_inline_annotation_suppresses() {
    let diags = check_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/unordered/inline_allow.rs"),
        &fixture_config(),
    );
    assert!(diags.is_empty(), "inline allows must suppress: {diags:?}");
}

#[test]
fn unordered_allowlist_entry_suppresses() {
    // The same violating fixture, checked under the allowlisted path.
    let diags = check_source(
        "crates/core/src/allowed.rs",
        include_str!("fixtures/unordered/bad.rs"),
        &fixture_config(),
    );
    assert!(diags.is_empty(), "lint.toml allow must suppress: {diags:?}");
}

#[test]
fn unordered_out_of_scope_path_is_ignored() {
    let diags = check_source(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/unordered/bad.rs"),
        &fixture_config(),
    );
    assert!(diags.is_empty(), "bench is out of scope: {diags:?}");
}

// --- float-in-decision-path ----------------------------------------------

#[test]
fn float_bad_fixture_is_flagged() {
    let diags = check_source(
        "crates/core/src/decision.rs",
        include_str!("fixtures/float/bad.rs"),
        &fixture_config(),
    );
    let hits = lints_hit(&diags);
    assert!(
        hits.iter().all(|l| *l == "float-in-decision-path") && hits.len() >= 3,
        "f64 casts and the 1e-6 literal must all be flagged: {diags:?}"
    );
}

#[test]
fn float_good_fixture_is_clean() {
    let diags = check_source(
        "crates/core/src/decision.rs",
        include_str!("fixtures/float/good.rs"),
        &fixture_config(),
    );
    assert!(diags.is_empty(), "u128 cross-multiplication: {diags:?}");
}

#[test]
fn float_item_allow_covers_only_that_fn() {
    let diags = check_source(
        "crates/core/src/decision.rs",
        include_str!("fixtures/float/allowed.rs"),
        &fixture_config(),
    );
    assert!(
        diags.is_empty(),
        "floats confined to the allowlisted fn: {diags:?}"
    );
}

// --- rng-discipline -------------------------------------------------------

#[test]
fn rng_bad_fixture_is_flagged() {
    let diags = check_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/rng/bad.rs"),
        &fixture_config(),
    );
    let hits = lints_hit(&diags);
    assert_eq!(
        hits,
        ["rng-discipline", "rng-discipline"],
        "thread_rng and raw seed_from_u64: {diags:?}"
    );
}

#[test]
fn rng_good_fixture_is_clean() {
    let diags = check_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/rng/good.rs"),
        &fixture_config(),
    );
    assert!(diags.is_empty(), "named streams are sanctioned: {diags:?}");
}

// --- wall-clock ------------------------------------------------------------

#[test]
fn wallclock_bad_fixture_is_flagged() {
    let diags = check_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/wallclock/bad.rs"),
        &fixture_config(),
    );
    assert!(
        diags.iter().any(|d| d.lint == "wall-clock"),
        "Instant must be flagged: {diags:?}"
    );
}

#[test]
fn wallclock_good_fixture_is_clean() {
    let diags = check_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/wallclock/good.rs"),
        &fixture_config(),
    );
    assert!(diags.is_empty(), "simulated time only: {diags:?}");
}

#[test]
fn wallclock_allowlisted_site_is_clean() {
    let diags = check_source(
        "crates/core/src/timer.rs",
        include_str!("fixtures/wallclock/bad.rs"),
        &fixture_config(),
    );
    assert!(
        diags.is_empty(),
        "the designated site may read Instant: {diags:?}"
    );
}

// --- no-panic ---------------------------------------------------------------

#[test]
fn panic_bad_fixture_is_flagged() {
    let diags = check_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/panic/bad.rs"),
        &fixture_config(),
    );
    let hits = lints_hit(&diags);
    assert_eq!(
        hits,
        ["no-panic", "no-panic"],
        "unwrap and unreachable!: {diags:?}"
    );
}

#[test]
fn panic_good_fixture_is_clean() {
    let diags = check_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/panic/good.rs"),
        &fixture_config(),
    );
    assert!(
        diags.is_empty(),
        "annotated unwrap, assert, and test code: {diags:?}"
    );
}

#[test]
fn panic_annotation_without_reason_does_not_suppress() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // lint: allow(panic)\n    x.unwrap()\n}\n";
    let diags = check_source("crates/core/src/fixture.rs", src, &fixture_config());
    assert_eq!(
        lints_hit(&diags),
        ["no-panic"],
        "a reason-less annotation must not count: {diags:?}"
    );
}

// --- wall-clock cross-check -------------------------------------------------

/// Builds `(path, Annotated)` sources for the cross-check from raw text.
fn cross_check(metrics_src: &str, cfg_text: &str) -> Vec<Diagnostic> {
    let cfg = parse(cfg_text).expect("config parses");
    let sources = vec![(
        "crates/sim/src/metrics.rs".to_string(),
        custody_lint::lexer::annotate(metrics_src),
    )];
    lints::wall_clock_cross_check(&sources, &cfg)
}

const CROSS_CFG: &str = r#"
    [lints.wall-clock]
    crates = ["*"]
    metrics_file = "crates/sim/src/metrics.rs"
    scrub_fn = "adopt_host_measurements"
    metrics_struct = "RunMetrics"
    host_measured_fields = ["allocator_wall_secs"]
    host_field_patterns = ["*_wall_secs", "peak_rss_*"]
"#;

#[test]
fn cross_check_accepts_consistent_lists() {
    let src = "pub struct RunMetrics {\n    pub allocator_wall_secs: f64,\n    pub jobs_done: u64,\n}\nimpl RunMetrics {\n    pub fn adopt_host_measurements(&mut self, other: &RunMetrics) {\n        self.allocator_wall_secs = other.allocator_wall_secs;\n    }\n}\n";
    let diags = cross_check(src, CROSS_CFG);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn cross_check_catches_unscrubbed_declared_field() {
    // Declared in lint.toml but the scrubber never copies it.
    let src = "pub struct RunMetrics {\n    pub allocator_wall_secs: f64,\n}\nimpl RunMetrics {\n    pub fn adopt_host_measurements(&mut self, _other: &RunMetrics) {}\n}\n";
    let diags = cross_check(src, CROSS_CFG);
    assert!(
        diags.iter().any(|d| d.message.contains("does not scrub")),
        "{diags:?}"
    );
}

#[test]
fn cross_check_catches_undeclared_scrubbed_field() {
    // Scrubbed by the function but missing from host_measured_fields.
    let src = "pub struct RunMetrics {\n    pub allocator_wall_secs: f64,\n    pub extra_wall_secs: f64,\n}\nimpl RunMetrics {\n    pub fn adopt_host_measurements(&mut self, other: &RunMetrics) {\n        self.allocator_wall_secs = other.allocator_wall_secs;\n        self.extra_wall_secs = other.extra_wall_secs;\n    }\n}\n";
    let diags = cross_check(src, CROSS_CFG);
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("does not declare it")),
        "{diags:?}"
    );
}

#[test]
fn cross_check_catches_suspicious_undeclared_struct_field() {
    // A `*_wall_secs` field that is neither declared nor scrubbed.
    let src = "pub struct RunMetrics {\n    pub allocator_wall_secs: f64,\n    pub sneaky_wall_secs: f64,\n}\nimpl RunMetrics {\n    pub fn adopt_host_measurements(&mut self, other: &RunMetrics) {\n        self.allocator_wall_secs = other.allocator_wall_secs;\n    }\n}\n";
    let diags = cross_check(src, CROSS_CFG);
    assert!(
        diags.iter().any(|d| d.message.contains("naming pattern")),
        "{diags:?}"
    );
}

#[test]
fn cross_check_ignores_deterministic_peak_fields() {
    // peak_queue_len is a simulation metric: the patterns must not trip.
    let src = "pub struct RunMetrics {\n    pub allocator_wall_secs: f64,\n    pub peak_queue_len: usize,\n}\nimpl RunMetrics {\n    pub fn adopt_host_measurements(&mut self, other: &RunMetrics) {\n        self.allocator_wall_secs = other.allocator_wall_secs;\n    }\n}\n";
    let diags = cross_check(src, CROSS_CFG);
    assert!(diags.is_empty(), "{diags:?}");
}
