//! The workspace must be lint-clean: `cargo test -p custody-lint` fails
//! the moment someone introduces a violation without a written
//! justification, even before CI runs the `--check` binary.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has two ancestors")
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let cfg = custody_lint::load_config(root).expect("lint.toml parses");
    let diags = custody_lint::check_workspace(root, &cfg).expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "the workspace must pass custody-lint; violations:\n{}",
        custody_lint::to_json(&diags)
    );
}

#[test]
fn checked_in_config_defines_every_lint() {
    let root = workspace_root();
    let cfg = custody_lint::load_config(root).expect("lint.toml parses");
    for name in custody_lint::config::LINT_NAMES {
        let scope = cfg.scope(name);
        assert!(
            !scope.crates.is_empty() || !scope.files.is_empty(),
            "lint `{name}` has an empty scope in lint.toml"
        );
    }
}
