//! A minimal Rust lexer: just enough token structure for the workspace
//! invariant lints.
//!
//! The build environment is fully offline, so `syn` cannot be a
//! dependency (the same constraint that led to the in-tree `criterion`
//! stub). The lints only need identifier/literal-level facts — "does this
//! non-test code mention `HashMap`?", "is there a float literal inside
//! this function?" — so a hand-rolled lexer plus a light context pass
//! (brace depth, `#[cfg(test)]` regions, enclosing `fn` names, inline
//! `// lint: allow(...)` comments) is sufficient and keeps the linter
//! dependency-free.
//!
//! The lexer understands line/block comments (nested), string literals
//! (plain, raw, byte), char literals vs. lifetimes, numeric literals
//! (classifying floats), and identifiers. Everything else is a one-byte
//! punctuation token.

/// Token kinds the lints care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Floating-point literal (`1.0`, `1e-6`, `2f64`, ...).
    Float,
    /// Integer literal.
    Int,
    /// String literal of any flavour.
    Str,
    /// Character literal.
    Char,
    /// Lifetime or loop label (`'a`).
    Lifetime,
    /// Single punctuation byte.
    Punct(u8),
    /// Line comment, text includes the leading `//`.
    LineComment,
}

/// One token with its source text and 1-based line number.
#[derive(Debug, Clone)]
pub struct Tok<'a> {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's source text.
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// Per-token context computed by [`annotate`]: whether the token sits in
/// test-only code and which function body encloses it.
#[derive(Debug, Clone, Copy)]
pub struct TokCtx {
    /// Inside a `#[cfg(test)]` / `#[test]` item body.
    pub in_test: bool,
    /// Index into [`Annotated::fn_names`] of the innermost enclosing
    /// function, if any.
    pub enclosing_fn: Option<usize>,
}

/// An inline allow annotation parsed from a `// lint: allow(<name>) — <reason>`
/// comment.
#[derive(Debug, Clone)]
pub struct InlineAllow {
    /// The lint name inside `allow(...)`.
    pub lint: String,
    /// The justification after the separator; may be empty (the checker
    /// rejects empty reasons).
    pub reason: String,
    /// 1-based line the comment sits on. The allow suppresses findings on
    /// this line and the next.
    pub line: usize,
}

/// Lexed and context-annotated source file.
pub struct Annotated<'a> {
    /// All tokens except comments, in source order.
    pub tokens: Vec<Tok<'a>>,
    /// Context parallel to `tokens`.
    pub ctx: Vec<TokCtx>,
    /// Names of functions, indexed by [`TokCtx::enclosing_fn`].
    pub fn_names: Vec<String>,
    /// Inline allow annotations found in line comments.
    pub allows: Vec<InlineAllow>,
}

/// Lexes `src` into tokens (comments included).
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: &src[start..i],
                    line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment; discarded (annotations use `//`).
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (end, nl) = scan_string(b, i);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: &src[i..end],
                    line,
                });
                line += nl;
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let (end, nl) = scan_raw_or_byte(b, i);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: &src[i..end],
                    line,
                });
                line += nl;
                i = end;
            }
            b'\'' => {
                let (kind, end) = scan_quote(b, i);
                toks.push(Tok {
                    kind,
                    text: &src[i..end],
                    line,
                });
                i = end;
            }
            _ if c.is_ascii_digit() => {
                let (kind, end) = scan_number(b, i);
                toks.push(Tok {
                    kind,
                    text: &src[i..end],
                    line,
                });
                i = end;
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: &src[start..i],
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct(c),
                    text: &src[i..i + 1],
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `rb"..."` — but not a
/// plain identifier starting with `r`/`b` and not a raw identifier
/// (`r#ident`).
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (r, b in either order).
    for _ in 0..2 {
        if j < b.len() && (b[j] == b'r' || b[j] == b'b') {
            j += 1;
        }
    }
    // Then optional hashes, then a quote. `r#ident` (raw identifier) has
    // hashes followed by identifier chars, not a quote, so it lands on
    // the `false` path.
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Scans a plain string literal starting at the opening quote. Returns
/// (end index past closing quote, newlines consumed).
fn scan_string(b: &[u8], start: usize) -> (usize, usize) {
    let mut i = start + 1;
    let mut nl = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// Scans raw/byte string forms. Returns (end index, newlines consumed).
fn scan_raw_or_byte(b: &[u8], start: usize) -> (usize, usize) {
    let mut i = start;
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        i += 1;
    }
    let mut hashes = 0;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(i < b.len() && b[i] == b'"');
    if hashes == 0 && !b[start..i].contains(&b'r') {
        // Plain byte string `b"..."`: escapes allowed.
        let (end, nl) = scan_string(b, i);
        return (end, nl);
    }
    i += 1; // past opening quote
    let mut nl = 0;
    while i < b.len() {
        if b[i] == b'\n' {
            nl += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0;
            while j < b.len() && b[j] == b'#' && h < hashes {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return (j, nl);
            }
        }
        i += 1;
    }
    (i, nl)
}

/// Distinguishes a char literal from a lifetime at a `'`.
fn scan_quote(b: &[u8], start: usize) -> (TokKind, usize) {
    let i = start + 1;
    if i >= b.len() {
        return (TokKind::Punct(b'\''), i);
    }
    if b[i] == b'\\' {
        // Escaped char literal: find the closing quote.
        let mut j = i + 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return (TokKind::Char, (j + 1).min(b.len()));
    }
    if b[i] == b'_' || b[i].is_ascii_alphabetic() {
        // Could be 'a' (char) or 'a (lifetime): lifetime iff the run of
        // identifier chars is not followed by a closing quote.
        let mut j = i;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        if j < b.len() && b[j] == b'\'' && j == i + 1 {
            return (TokKind::Char, j + 1);
        }
        return (TokKind::Lifetime, j);
    }
    // Something like '0' or '+' — a char literal.
    let mut j = i + 1;
    while j < b.len() && b[j] != b'\'' {
        j += 1;
    }
    (TokKind::Char, (j + 1).min(b.len()))
}

/// Scans a numeric literal, classifying floats. `1.0`, `1e9`, `1_000.5`,
/// `2f64` are floats; `0..n` and `1.max(2)` are integers followed by
/// punctuation.
fn scan_number(b: &[u8], start: usize) -> (TokKind, usize) {
    let mut i = start;
    let hex = i + 1 < b.len() && b[i] == b'0' && (b[i + 1] | 0x20) == b'x';
    let binoct = i + 1 < b.len() && b[i] == b'0' && matches!(b[i + 1] | 0x20, b'b' | b'o');
    if hex || binoct {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return (TokKind::Int, i);
    }
    let mut float = false;
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
        float = true;
        i += 1;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    } else if i < b.len() && b[i] == b'.' && (i + 1 >= b.len() || is_float_dot_end(b[i + 1])) {
        // Trailing-dot float like `1.` (not `1..x` or `1.method()`).
        float = true;
        i += 1;
    }
    if i < b.len() && (b[i] | 0x20) == b'e' {
        let mut j = i + 1;
        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < b.len() && b[j].is_ascii_digit() {
            float = true;
            i = j;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix.
    if rest_matches(b, i, b"f32") || rest_matches(b, i, b"f64") {
        float = true;
        i += 3;
    } else {
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
    }
    (if float { TokKind::Float } else { TokKind::Int }, i)
}

fn is_float_dot_end(next: u8) -> bool {
    !(next == b'.' || next == b'_' || next.is_ascii_alphabetic())
}

fn rest_matches(b: &[u8], i: usize, pat: &[u8]) -> bool {
    b.len() >= i + pat.len()
        && &b[i..i + pat.len()] == pat
        && (b.len() == i + pat.len()
            || !(b[i + pat.len()].is_ascii_alphanumeric() || b[i + pat.len()] == b'_'))
}

/// Lexes and annotates `src`: computes test regions, enclosing functions
/// and inline allow annotations.
pub fn annotate(src: &str) -> Annotated<'_> {
    let raw = lex(src);
    let mut allows = Vec::new();
    let mut tokens: Vec<Tok<'_>> = Vec::new();
    for t in &raw {
        if t.kind == TokKind::LineComment {
            if let Some(a) = parse_allow_comment(t.text, t.line) {
                allows.push(a);
            }
        } else {
            tokens.push(t.clone());
        }
    }

    let mut ctx = vec![
        TokCtx {
            in_test: false,
            enclosing_fn: None,
        };
        tokens.len()
    ];
    let mut fn_names: Vec<String> = Vec::new();

    let mut depth: usize = 0;
    let mut test_stack: Vec<usize> = Vec::new(); // depths at which test regions opened
    let mut fn_stack: Vec<(usize, usize)> = Vec::new(); // (fn_names idx, depth)
    let mut pending_test = false;
    let mut pending_fn: Option<usize> = None;
    let mut i = 0;
    while i < tokens.len() {
        // Attribute: `#[ ... ]` (skip inner `#![ ... ]`).
        if tokens[i].kind == TokKind::Punct(b'#')
            && i + 1 < tokens.len()
            && tokens[i + 1].kind == TokKind::Punct(b'[')
        {
            let mut j = i + 2;
            let mut bdepth = 1;
            let mut is_test_attr = false;
            let mut saw_cfg = false;
            while j < tokens.len() && bdepth > 0 {
                match tokens[j].kind {
                    TokKind::Punct(b'[') => bdepth += 1,
                    TokKind::Punct(b']') => bdepth -= 1,
                    TokKind::Ident => {
                        let t = tokens[j].text;
                        if t == "cfg" || t == "cfg_attr" {
                            saw_cfg = true;
                        }
                        if t == "test" && (saw_cfg || j == i + 2) {
                            is_test_attr = true;
                        }
                        if t == "should_panic" || t == "bench" {
                            is_test_attr = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            for c in ctx.iter_mut().take(j).skip(i) {
                c.in_test = !test_stack.is_empty() || pending_test || is_test_attr;
            }
            pending_test |= is_test_attr;
            i = j;
            continue;
        }

        ctx[i].in_test = !test_stack.is_empty() || pending_test;
        // Signature tokens (between `fn name` and its `{`) belong to the
        // declared fn, not the enclosing one: allowlist items must cover
        // `-> f64` in `pub fn ratio(&self) -> f64`.
        ctx[i].enclosing_fn = pending_fn.or_else(|| fn_stack.last().map(|&(idx, _)| idx));

        match tokens[i].kind {
            TokKind::Ident
                if tokens[i].text == "fn"
                    && i + 1 < tokens.len()
                    && tokens[i + 1].kind == TokKind::Ident =>
            {
                fn_names.push(tokens[i + 1].text.to_string());
                pending_fn = Some(fn_names.len() - 1);
            }
            TokKind::Punct(b';') => {
                // Item without a body (trait method decl, `mod x;`).
                pending_fn = None;
                pending_test = false;
            }
            TokKind::Punct(b'{') => {
                if pending_test {
                    test_stack.push(depth);
                    pending_test = false;
                }
                if let Some(idx) = pending_fn.take() {
                    fn_stack.push((idx, depth));
                }
                depth += 1;
            }
            TokKind::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                while test_stack.last() == Some(&depth) {
                    test_stack.pop();
                }
                while fn_stack.last().map(|&(_, d)| d) == Some(depth) {
                    fn_stack.pop();
                }
            }
            _ => {}
        }
        i += 1;
    }

    Annotated {
        tokens,
        ctx,
        fn_names,
        allows,
    }
}

/// Parses `// lint: allow(<name>) — <reason>` (also accepts `-` or `:` as
/// the separator). Returns `None` for ordinary comments.
fn parse_allow_comment(text: &str, line: usize) -> Option<InlineAllow> {
    let body = text.trim_start_matches('/').trim();
    let rest = body.strip_prefix("lint:")?.trim();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    let mut reason = rest[close + 1..].trim();
    for sep in ["—", "--", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim();
            break;
        }
    }
    Some(InlineAllow {
        lint,
        reason: reason.to_string(),
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_vs_ranges_vs_method_calls() {
        let toks = lex("let a = 1.0; let b = 0..n; let c = 1.max(2); let d = 1e-6; let e = 2f64;");
        let kinds: Vec<(TokKind, &str)> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Float | TokKind::Int))
            .map(|t| (t.kind, t.text))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (TokKind::Float, "1.0"),
                (TokKind::Int, "0"),
                (TokKind::Int, "1"),
                (TokKind::Int, "2"),
                (TokKind::Float, "1e-6"),
                (TokKind::Float, "2f64"),
            ]
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            1,
            "one char literal"
        );
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            // HashMap in a comment
            let s = "HashMap in a string";
            let r = r#"HashMap raw"#;
            /* block HashMap */
        "##;
        let ann = annotate(src);
        assert!(!ann.tokens.iter().any(|t| t.text == "HashMap"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "
            fn lib_code() { let x = 1; }
            #[cfg(test)]
            mod tests {
                fn test_code() { let y = 2; }
            }
        ";
        let ann = annotate(src);
        let x = ann.tokens.iter().position(|t| t.text == "x").unwrap();
        let y = ann.tokens.iter().position(|t| t.text == "y").unwrap();
        assert!(!ann.ctx[x].in_test);
        assert!(ann.ctx[y].in_test);
    }

    #[test]
    fn enclosing_fn_names_are_tracked() {
        let src = "fn outer() { helper(); } fn later() { other(); }";
        let ann = annotate(src);
        let h = ann.tokens.iter().position(|t| t.text == "helper").unwrap();
        let o = ann.tokens.iter().position(|t| t.text == "other").unwrap();
        assert_eq!(ann.fn_names[ann.ctx[h].enclosing_fn.unwrap()], "outer");
        assert_eq!(ann.fn_names[ann.ctx[o].enclosing_fn.unwrap()], "later");
    }

    #[test]
    fn allow_comments_parse() {
        let ann = annotate("let x = 1; // lint: allow(no-panic) — unwrap on fresh vec\n");
        assert_eq!(ann.allows.len(), 1);
        assert_eq!(ann.allows[0].lint, "no-panic");
        assert_eq!(ann.allows[0].reason, "unwrap on fresh vec");
        assert_eq!(ann.allows[0].line, 1);
    }

    #[test]
    fn test_attr_marks_following_fn() {
        let src = "
            #[test]
            fn a_test() { body(); }
            fn real() { code(); }
        ";
        let ann = annotate(src);
        let b = ann.tokens.iter().position(|t| t.text == "body").unwrap();
        let c = ann.tokens.iter().position(|t| t.text == "code").unwrap();
        assert!(ann.ctx[b].in_test);
        assert!(!ann.ctx[c].in_test);
    }
}
