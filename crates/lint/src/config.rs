//! `lint.toml` — the checked-in allowlist configuration.
//!
//! The workspace is offline, so instead of a `toml` dependency the linter
//! parses the small TOML subset it needs: `[table]` headers,
//! `[[array.of.tables]]` headers, `key = "string"` and
//! `key = ["a", "b"]` pairs, comments and blank lines. The parser is
//! strict — anything outside the subset is a hard error, because a
//! silently-ignored allowlist entry would defeat the linter.
//!
//! Every allow entry must carry a non-empty `reason`; the loader rejects
//! configurations with unjustified allows so the policy ("an allow is a
//! documented decision") is enforced by construction.

use std::collections::BTreeMap;
use std::fmt;

/// The five lints. Names here are the strings used in `lint.toml` and in
/// inline `// lint: allow(...)` annotations.
pub const LINT_NAMES: [&str; 5] = [
    "unordered-iteration",
    "float-in-decision-path",
    "rng-discipline",
    "wall-clock",
    "no-panic",
];

/// One allowlist entry: a path (file, or directory prefix when ending in
/// `/`), an optional item (enclosing function name), and a mandatory
/// written justification.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Repo-relative path; a trailing `/` makes it a directory prefix.
    pub path: String,
    /// Restrict the allow to one enclosing function.
    pub item: Option<String>,
    /// Why this exception is sound. Never empty.
    pub reason: String,
}

impl AllowEntry {
    /// Whether this entry covers `path` (and `enclosing_fn`, when the
    /// entry names an item).
    pub fn covers(&self, path: &str, enclosing_fn: Option<&str>) -> bool {
        let path_hit = if self.path.ends_with('/') {
            path.starts_with(self.path.as_str())
        } else {
            path == self.path
        };
        if !path_hit {
            return false;
        }
        match &self.item {
            None => true,
            Some(item) => enclosing_fn == Some(item.as_str()),
        }
    }
}

/// Per-lint scope and allowlist.
#[derive(Debug, Clone, Default)]
pub struct LintScope {
    /// Crate names under `crates/` whose `src/` trees are in scope;
    /// `"*"` puts every walked file in scope.
    pub crates: Vec<String>,
    /// Additional in-scope files or directory prefixes (repo-relative).
    pub files: Vec<String>,
    /// Allowlist entries.
    pub allows: Vec<AllowEntry>,
    /// Extra string-list keys (e.g. `host_measured_fields`).
    pub extra: BTreeMap<String, Vec<String>>,
}

impl LintScope {
    /// Whether `path` (repo-relative, `/`-separated) is in this lint's
    /// scope.
    pub fn in_scope(&self, path: &str) -> bool {
        for c in &self.crates {
            if c == "*" {
                return true;
            }
            if path.starts_with(&format!("crates/{c}/src/")) {
                return true;
            }
        }
        self.files
            .iter()
            .any(|f| path == f || (f.ends_with('/') && path.starts_with(f.as_str())))
    }

    /// The first allow entry covering `(path, enclosing_fn)`, if any.
    pub fn allowed_by(&self, path: &str, enclosing_fn: Option<&str>) -> Option<&AllowEntry> {
        self.allows.iter().find(|a| a.covers(path, enclosing_fn))
    }

    /// A named extra list, empty when absent.
    pub fn extra_list(&self, key: &str) -> &[String] {
        self.extra.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A named extra single value (first element of the list form).
    pub fn extra_one(&self, key: &str) -> Option<&str> {
        self.extra_list(key).first().map(String::as_str)
    }
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes the workspace walker skips entirely (fixtures with
    /// intentional violations, generated code).
    pub skip: Vec<String>,
    /// Per-lint scopes, keyed by lint name.
    pub lints: BTreeMap<String, LintScope>,
}

impl Config {
    /// The scope for `lint`; an empty default when the config omits it.
    pub fn scope(&self, lint: &str) -> LintScope {
        self.lints.get(lint).cloned().unwrap_or_default()
    }

    /// Whether the walker should skip `path`.
    pub fn skipped(&self, path: &str) -> bool {
        self.skip
            .iter()
            .any(|s| path == s || path.starts_with(s.as_str()))
    }
}

/// A configuration error with a line number.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in `lint.toml` (0 for semantic errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "lint.toml:{}: {}", self.line, self.message)
        } else {
            write!(f, "lint.toml: {}", self.message)
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parses the TOML subset out of `text` and validates the schema.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    // Raw document: table path -> list of table instances (array tables
    // append; a plain table is a single instance).
    let mut doc: BTreeMap<String, Vec<BTreeMap<String, Vec<String>>>> = BTreeMap::new();
    let mut current: Option<String> = None;

    // Join multi-line arrays: a `key = [` line accumulates until the
    // bracket closes (strings in this file never contain brackets).
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let stripped = strip_comment(raw_line).trim().to_string();
        match &mut pending {
            Some((_, acc)) => {
                acc.push(' ');
                acc.push_str(&stripped);
                if stripped.contains(']') {
                    let (l, s) = pending.take().unwrap_or_default();
                    lines.push((l, s));
                }
            }
            None => {
                if stripped.contains('[') && stripped.contains('=') && !stripped.contains(']') {
                    pending = Some((idx + 1, stripped));
                } else {
                    lines.push((idx + 1, stripped));
                }
            }
        }
    }
    if let Some((l, _)) = pending {
        return Err(err(l, "unterminated array"));
    }

    for (lineno, line) in &lines {
        let (lineno, line) = (*lineno, line.as_str());
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let name = header.trim().to_string();
            if name.is_empty() {
                return Err(err(lineno, "empty array-table header"));
            }
            doc.entry(name.clone()).or_default().push(BTreeMap::new());
            current = Some(name);
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = header.trim().to_string();
            if name.is_empty() {
                return Err(err(lineno, "empty table header"));
            }
            let tables = doc.entry(name.clone()).or_default();
            if tables.is_empty() {
                tables.push(BTreeMap::new());
            }
            current = Some(name);
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().to_string();
            let value = line[eq + 1..].trim();
            if key.is_empty() {
                return Err(err(lineno, "empty key"));
            }
            let values = parse_value(value).map_err(|m| err(lineno, m))?;
            let table = current
                .as_ref()
                .ok_or_else(|| err(lineno, "key outside any table"))?;
            let instances = doc.get_mut(table).expect("current table exists"); // lint: allow(panic) — the parser creates the table instance before any key line reaches it
            let last = instances.last_mut().expect("table has an instance"); // lint: allow(panic) — the parser creates the table instance before any key line reaches it
            if last.insert(key.clone(), values).is_some() {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
        } else {
            return Err(err(lineno, format!("unsupported syntax: `{line}`")));
        }
    }

    build(doc)
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"str"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Vec::new());
        }
        inner
            .split(',')
            .map(str::trim)
            .filter(|part| !part.is_empty()) // tolerate a trailing comma
            .map(parse_string)
            .collect()
    } else {
        Ok(vec![parse_string(value)?])
    }
}

fn parse_string(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{s}`"))
}

/// Converts the raw document into a validated [`Config`].
fn build(doc: BTreeMap<String, Vec<BTreeMap<String, Vec<String>>>>) -> Result<Config, ConfigError> {
    let mut config = Config::default();
    for (table, instances) in doc {
        if table == "workspace" {
            for inst in instances {
                for (key, values) in inst {
                    match key.as_str() {
                        "skip" => config.skip.extend(values),
                        other => {
                            return Err(err(0, format!("unknown [workspace] key `{other}`")));
                        }
                    }
                }
            }
            continue;
        }
        let Some(rest) = table.strip_prefix("lints.") else {
            return Err(err(0, format!("unknown table `[{table}]`")));
        };
        let (lint, is_allow) = match rest.strip_suffix(".allow") {
            Some(lint) => (lint, true),
            None => (rest, false),
        };
        if !LINT_NAMES.contains(&lint) {
            return Err(err(
                0,
                format!("unknown lint `{lint}` (expected one of {LINT_NAMES:?})"),
            ));
        }
        let scope = config.lints.entry(lint.to_string()).or_default();
        for inst in instances {
            if is_allow {
                let path = inst
                    .get("path")
                    .and_then(|v| v.first())
                    .cloned()
                    .ok_or_else(|| err(0, format!("allow entry for `{lint}` missing `path`")))?;
                let item = inst.get("item").and_then(|v| v.first()).cloned();
                let reason = inst
                    .get("reason")
                    .and_then(|v| v.first())
                    .cloned()
                    .unwrap_or_default();
                if reason.trim().is_empty() {
                    return Err(err(
                        0,
                        format!(
                            "allow entry for `{lint}` at `{path}` has no written justification \
                             (`reason`)"
                        ),
                    ));
                }
                for key in inst.keys() {
                    if !matches!(key.as_str(), "path" | "item" | "reason") {
                        return Err(err(0, format!("unknown allow key `{key}` for `{lint}`")));
                    }
                }
                scope.allows.push(AllowEntry { path, item, reason });
            } else {
                for (key, values) in inst {
                    match key.as_str() {
                        "crates" => scope.crates.extend(values),
                        "files" => scope.files.extend(values),
                        other => {
                            scope.extra.insert(other.to_string(), values);
                        }
                    }
                }
            }
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # comment
        [workspace]
        skip = ["crates/lint/tests/fixtures/"]

        [lints.unordered-iteration]
        crates = ["core", "sim"]

        [[lints.unordered-iteration.allow]]
        path = "crates/core/src/baselines/mod.rs"
        item = "spread_partition"
        reason = "order provably cannot leak"

        [lints.wall-clock]
        crates = ["*"]
        host_measured_fields = ["allocator_wall_secs", "peak_rss_bytes"]
        metrics_file = "crates/sim/src/metrics.rs"
    "#;

    #[test]
    fn parses_scopes_and_allows() {
        let cfg = parse(SAMPLE).expect("valid config");
        assert_eq!(cfg.skip, vec!["crates/lint/tests/fixtures/"]);
        let s = cfg.scope("unordered-iteration");
        assert!(s.in_scope("crates/core/src/lib.rs"));
        assert!(s.in_scope("crates/sim/src/driver.rs"));
        assert!(!s.in_scope("crates/bench/src/lib.rs"));
        assert_eq!(s.allows.len(), 1);
        assert!(s
            .allowed_by("crates/core/src/baselines/mod.rs", Some("spread_partition"))
            .is_some());
        assert!(s
            .allowed_by("crates/core/src/baselines/mod.rs", Some("other_fn"))
            .is_none());
    }

    #[test]
    fn wildcard_crates_cover_everything() {
        let cfg = parse(SAMPLE).expect("valid config");
        let s = cfg.scope("wall-clock");
        assert!(s.in_scope("anything/at/all.rs"));
        assert_eq!(
            s.extra_list("host_measured_fields"),
            ["allocator_wall_secs", "peak_rss_bytes"]
        );
        assert_eq!(
            s.extra_one("metrics_file"),
            Some("crates/sim/src/metrics.rs")
        );
    }

    #[test]
    fn missing_reason_is_rejected() {
        let bad = r#"
            [[lints.no-panic.allow]]
            path = "crates/core/src/lib.rs"
        "#;
        let e = parse(bad).expect_err("must reject");
        assert!(e.message.contains("justification"), "{e}");
    }

    #[test]
    fn unknown_lint_is_rejected() {
        let bad = "[lints.made-up]\ncrates = [\"core\"]\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn directory_prefix_allows() {
        let entry = AllowEntry {
            path: "crates/bench/".to_string(),
            item: None,
            reason: "host measurement harness".to_string(),
        };
        assert!(entry.covers("crates/bench/src/lib.rs", None));
        assert!(!entry.covers("crates/core/src/lib.rs", None));
    }

    #[test]
    fn skip_prefixes() {
        let cfg = parse(SAMPLE).expect("valid config");
        assert!(cfg.skipped("crates/lint/tests/fixtures/unordered/bad.rs"));
        assert!(!cfg.skipped("crates/lint/tests/self_check.rs"));
    }
}
