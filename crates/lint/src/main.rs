//! `custody-lint` CLI.
//!
//! ```text
//! custody-lint --check [--root PATH]   # CI mode: JSON diagnostics on
//!                                      # stdout, exit 1 on violations
//! custody-lint --list  [--root PATH]   # dump effective allowlists
//! custody-lint         [--root PATH]   # human-readable diagnostics
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--list" => list = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "custody-lint: workspace invariant linter\n\
                     \n\
                     USAGE: custody-lint [--check | --list] [--root PATH]\n\
                     \n\
                     --check   CI mode: machine-readable JSON diagnostics on stdout,\n\
                     \u{20}         exit 1 when any violation is found\n\
                     --list    dump the effective per-lint scopes and allowlists\n\
                     --root    workspace root (default: walk up from the current dir)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot determine current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root.or_else(|| custody_lint::find_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("no workspace root found (no lint.toml or workspace Cargo.toml upward)");
            return ExitCode::from(2);
        }
    };
    let cfg = match custody_lint::load_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if list {
        print_allowlists(&cfg);
        return ExitCode::SUCCESS;
    }

    let diags = match custody_lint::check_workspace(&root, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    if check {
        println!("{}", custody_lint::to_json(&diags));
    } else {
        for d in &diags {
            println!("{}:{}: [{}] {}", d.file, d.line, d.lint, d.message);
        }
        if diags.is_empty() {
            println!("custody-lint: workspace clean");
        } else {
            println!("custody-lint: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `--list`: the effective configuration, one lint per section.
fn print_allowlists(cfg: &custody_lint::Config) {
    println!("workspace skip prefixes: {:?}", cfg.skip);
    for name in custody_lint::config::LINT_NAMES {
        let scope = cfg.scope(name);
        println!("\n[{name}]");
        if !scope.crates.is_empty() {
            println!("  crates: {:?}", scope.crates);
        }
        if !scope.files.is_empty() {
            println!("  files:  {:?}", scope.files);
        }
        for (key, values) in &scope.extra {
            println!("  {key}: {values:?}");
        }
        if scope.allows.is_empty() {
            println!("  (no allowlist entries)");
        }
        for a in &scope.allows {
            match &a.item {
                Some(item) => println!("  allow {} :: {item}\n        — {}", a.path, a.reason),
                None => println!("  allow {}\n        — {}", a.path, a.reason),
            }
        }
    }
}
