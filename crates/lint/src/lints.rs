//! The five workspace invariant lints.
//!
//! Each lint walks the annotated token stream of one file and emits
//! [`Diagnostic`]s for violations that are not suppressed by an inline
//! `// lint: allow(<name>) — <reason>` annotation (same line or the line
//! above) or by a `lint.toml` allowlist entry. The wall-clock lint
//! additionally runs a whole-workspace cross-check tying the
//! `RunMetrics::adopt_host_measurements` scrub list to the declared
//! host-measured field set.

use std::collections::BTreeSet;

use crate::config::{Config, LintScope};
use crate::lexer::{Annotated, TokKind};

/// One finding: lint name, repo-relative file, 1-based line, message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint name (one of [`crate::config::LINT_NAMES`]).
    pub lint: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn new(lint: &str, file: &str, line: usize, message: String) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            lint: lint.to_string(),
            message,
        }
    }
}

/// Whether `path` names test-only code by location: integration tests,
/// benches and examples are exempt from the library-code lints.
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
}

/// Context shared by the per-file checks.
struct FileCheck<'a> {
    path: &'a str,
    ann: &'a Annotated<'a>,
    out: Vec<Diagnostic>,
}

impl<'a> FileCheck<'a> {
    /// Emits `message` for the token at `idx` unless an inline allow or a
    /// `lint.toml` entry suppresses it. Inline allows with an empty reason
    /// do not count — the annotation contract requires a justification.
    fn emit(&mut self, scope: &LintScope, lint: &str, idx: usize, message: String) {
        let tok = &self.ann.tokens[idx];
        let enclosing = self.ann.ctx[idx]
            .enclosing_fn
            .map(|i| self.ann.fn_names[i].as_str());
        if scope.allowed_by(self.path, enclosing).is_some() {
            return;
        }
        let inline = self.ann.allows.iter().any(|a| {
            (a.lint == lint || (lint == "no-panic" && a.lint == "panic"))
                && !a.reason.trim().is_empty()
                && (a.line == tok.line || a.line + 1 == tok.line)
        });
        if inline {
            return;
        }
        self.out
            .push(Diagnostic::new(lint, self.path, tok.line, message));
    }
}

/// Runs every per-file lint over one annotated file. `path` is the
/// repo-relative path used for scoping and allowlists.
pub fn check_file(path: &str, ann: &Annotated<'_>, cfg: &Config) -> Vec<Diagnostic> {
    let mut fc = FileCheck {
        path,
        ann,
        out: Vec::new(),
    };
    let test_path = is_test_path(path);
    unordered_iteration(&mut fc, cfg, test_path);
    float_in_decision_path(&mut fc, cfg, test_path);
    rng_discipline(&mut fc, cfg, test_path);
    wall_clock(&mut fc, cfg, test_path);
    no_panic(&mut fc, cfg, test_path);
    fc.out
}

/// Lint 1 — unordered-iteration: `HashMap`/`HashSet` are banned outright
/// in the deterministic crates. Iteration order of std's hashed
/// containers is seeded per-process, so any iteration (or order-sensitive
/// collect) silently breaks golden determinism; lookup-only uses are
/// still banned because nothing stops a later change from iterating.
/// Use `BTreeMap`/`BTreeSet`, `custody_simcore::DenseSet`, or a sorted
/// vec — or add a justified allow.
fn unordered_iteration(fc: &mut FileCheck<'_>, cfg: &Config, test_path: bool) {
    let scope = cfg.scope("unordered-iteration");
    if test_path || !scope.in_scope(fc.path) {
        return;
    }
    for i in 0..fc.ann.tokens.len() {
        let t = &fc.ann.tokens[i];
        if fc.ann.ctx[i].in_test || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            let name = t.text;
            fc.emit(
                &scope,
                "unordered-iteration",
                i,
                format!(
                    "`{name}` in a deterministic crate: hashed iteration order is \
                     seeded per-process and can leak into results; use BTreeMap/BTreeSet, \
                     DenseSet, or a sorted vec (or add a justified allow)"
                ),
            );
        }
    }
}

/// Lint 2 — float-in-decision-path: `f32`/`f64` types, float literals and
/// float casts are banned inside the allocator decision modules. Every
/// comparison the allocator makes must go through exact integer/rational
/// arithmetic (`u128` cross-multiplication); floats are only for
/// reporting, behind allowlisted functions.
fn float_in_decision_path(fc: &mut FileCheck<'_>, cfg: &Config, test_path: bool) {
    let scope = cfg.scope("float-in-decision-path");
    if test_path || !scope.in_scope(fc.path) {
        return;
    }
    for i in 0..fc.ann.tokens.len() {
        let t = &fc.ann.tokens[i];
        if fc.ann.ctx[i].in_test {
            continue;
        }
        let hit = match t.kind {
            TokKind::Ident => t.text == "f32" || t.text == "f64",
            TokKind::Float => true,
            _ => false,
        };
        if hit {
            let what = match t.kind {
                TokKind::Float => format!("float literal `{}`", t.text),
                _ => format!("`{}`", t.text),
            };
            fc.emit(
                &scope,
                "float-in-decision-path",
                i,
                format!(
                    "{what} in an allocator decision module: decisions must use exact \
                     integer/rational arithmetic; floats are reporting-only and belong in \
                     allowlisted functions"
                ),
            );
        }
    }
}

/// Lint 3 — rng-discipline: ambient entropy (`thread_rng`,
/// `from_entropy`, `OsRng`, `SystemTime::now`) is banned everywhere, and
/// inside the deterministic crates raw `SimRng::seed_from_u64` is banned
/// outside test code — runtime randomness must flow through the named
/// seeded streams (`SimRng::for_stream(seed, "control-plane")` /
/// `rng.split("label")`) so adding a consumer never perturbs existing
/// streams.
fn rng_discipline(fc: &mut FileCheck<'_>, cfg: &Config, test_path: bool) {
    let scope = cfg.scope("rng-discipline");
    if test_path {
        return;
    }
    const BANNED: [(&str, &str); 6] = [
        ("thread_rng", "ambient thread-local entropy"),
        ("from_entropy", "OS entropy seeding"),
        ("OsRng", "OS entropy source"),
        ("StdRng", "external RNG type outside the pinned SimRng"),
        ("SmallRng", "external RNG type outside the pinned SimRng"),
        (
            "SystemTime",
            "wall-clock time as an entropy/ordering source",
        ),
    ];
    for i in 0..fc.ann.tokens.len() {
        let t = &fc.ann.tokens[i];
        if fc.ann.ctx[i].in_test || t.kind != TokKind::Ident {
            continue;
        }
        if let Some((name, why)) = BANNED.iter().find(|(n, _)| *n == t.text) {
            fc.emit(
                &scope,
                "rng-discipline",
                i,
                format!(
                    "`{name}` ({why}) breaks replayability: every run must be a pure \
                     function of the master seed"
                ),
            );
            continue;
        }
        if t.text == "seed_from_u64" && scope.in_scope(fc.path) {
            fc.emit(
                &scope,
                "rng-discipline",
                i,
                "raw `seed_from_u64` in deterministic library code: derive RNGs through \
                 the named-stream constructors (`SimRng::for_stream(seed, \"label\")` or \
                 `rng.split(\"label\")`) so new consumers never perturb existing streams"
                    .to_string(),
            );
        }
    }
}

/// Lint 4 — wall-clock-containment: `Instant` may appear only at
/// allowlisted host-measurement sites. Whatever those sites measure must
/// be scrubbed before run-equality comparisons, which the workspace
/// cross-check ([`wall_clock_cross_check`]) ties to
/// `RunMetrics::adopt_host_measurements`.
fn wall_clock(fc: &mut FileCheck<'_>, cfg: &Config, test_path: bool) {
    let scope = cfg.scope("wall-clock");
    if test_path {
        return;
    }
    for i in 0..fc.ann.tokens.len() {
        let t = &fc.ann.tokens[i];
        if fc.ann.ctx[i].in_test || t.kind != TokKind::Ident || t.text != "Instant" {
            continue;
        }
        fc.emit(
            &scope,
            "wall-clock",
            i,
            "`Instant` outside the allowlisted host-measurement sites: wall-clock \
             readings are host-dependent and must stay contained in the phase timers \
             and bench harness, scrubbed by `RunMetrics::adopt_host_measurements`"
                .to_string(),
        );
    }
}

/// Lint 5 — no-panic-in-lib: `unwrap`/`expect`/`panic!`/`unreachable!`
/// in non-test library code needs a `// lint: allow(panic) — <reason>`
/// annotation. Asserts are exempt: the invariant auditor is built on
/// them.
fn no_panic(fc: &mut FileCheck<'_>, cfg: &Config, test_path: bool) {
    let scope = cfg.scope("no-panic");
    if test_path || !scope.in_scope(fc.path) {
        return;
    }
    for i in 0..fc.ann.tokens.len() {
        let t = &fc.ann.tokens[i];
        if fc.ann.ctx[i].in_test || t.kind != TokKind::Ident {
            continue;
        }
        let next_punct = fc.ann.tokens.get(i + 1).and_then(|n| match n.kind {
            TokKind::Punct(p) => Some(p),
            _ => None,
        });
        let hit = match t.text {
            "unwrap" | "expect" => next_punct == Some(b'('),
            "panic" | "unreachable" | "todo" | "unimplemented" => next_punct == Some(b'!'),
            _ => false,
        };
        if hit {
            let name = t.text;
            fc.emit(
                &scope,
                "no-panic",
                i,
                format!(
                    "`{name}` in library code: justify with `// lint: allow(panic) — \
                     <reason>` on this or the preceding line, or return an error"
                ),
            );
        }
    }
}

/// Workspace-level cross-check for the wall-clock lint. `sources` maps
/// repo-relative paths to annotated files; the check inspects the
/// configured metrics file:
///
/// 1. the set of `self.<field> = other.<field>` assignments inside the
///    scrub function must equal `host_measured_fields` from `lint.toml`;
/// 2. every field of the metrics struct whose name matches a
///    host-measurement naming pattern (`host_field_patterns` in
///    `lint.toml`; `*` at either end is a wildcard) must be in that set.
///
/// Together these make it impossible to add a host-measured field without
/// updating both the scrubber and the checked-in declaration.
pub fn wall_clock_cross_check(
    sources: &[(String, Annotated<'_>)],
    cfg: &Config,
) -> Vec<Diagnostic> {
    let scope = cfg.scope("wall-clock");
    let Some(metrics_file) = scope.extra_one("metrics_file") else {
        return Vec::new();
    };
    let scrub_fn = scope
        .extra_one("scrub_fn")
        .unwrap_or("adopt_host_measurements");
    let struct_name = scope.extra_one("metrics_struct").unwrap_or("RunMetrics");
    let declared: BTreeSet<&str> = scope
        .extra_list("host_measured_fields")
        .iter()
        .map(String::as_str)
        .collect();

    let mut out = Vec::new();
    let Some((path, ann)) = sources.iter().find(|(p, _)| p == metrics_file) else {
        out.push(Diagnostic::new(
            "wall-clock",
            metrics_file,
            0,
            format!("declared metrics_file `{metrics_file}` was not found in the workspace"),
        ));
        return out;
    };

    let scrubbed = scrub_assignments(ann, scrub_fn);
    let Some((fn_line, scrubbed)) = scrubbed else {
        out.push(Diagnostic::new(
            "wall-clock",
            path,
            0,
            format!("scrub function `{scrub_fn}` not found in `{metrics_file}`"),
        ));
        return out;
    };

    for field in &scrubbed {
        if !declared.contains(field.as_str()) {
            out.push(Diagnostic::new(
                "wall-clock",
                path,
                fn_line,
                format!(
                    "`{scrub_fn}` scrubs `{field}` but lint.toml host_measured_fields \
                     does not declare it; update the declaration"
                ),
            ));
        }
    }
    for field in &declared {
        if !scrubbed.contains(*field) {
            out.push(Diagnostic::new(
                "wall-clock",
                path,
                fn_line,
                format!(
                    "lint.toml declares host-measured field `{field}` but `{scrub_fn}` \
                     does not scrub it; a run-equality comparison would see host noise"
                ),
            ));
        }
    }

    let default_patterns = ["*_wall_secs".to_string(), "peak_rss_*".to_string()];
    let configured = scope.extra_list("host_field_patterns");
    let patterns: &[String] = if configured.is_empty() {
        &default_patterns
    } else {
        configured
    };
    for (field, line) in struct_fields(ann, struct_name) {
        let looks_host_measured = patterns.iter().any(|p| glob_match(p, &field));
        if looks_host_measured && !declared.contains(field.as_str()) {
            out.push(Diagnostic::new(
                "wall-clock",
                path,
                line,
                format!(
                    "`{struct_name}::{field}` matches a host-measurement naming pattern \
                     but is neither declared in host_measured_fields nor scrubbed by \
                     `{scrub_fn}`"
                ),
            ));
        }
    }
    out
}

/// Matches a field name against a pattern where a single `*` at the start
/// or end is a wildcard (`*_wall_secs`, `peak_rss_*`); anything else is an
/// exact match. `peak_rss_*` also matches the bare `peak_rss` stem.
fn glob_match(pattern: &str, name: &str) -> bool {
    if let Some(suffix) = pattern.strip_prefix('*') {
        name.ends_with(suffix)
    } else if let Some(prefix) = pattern.strip_suffix('*') {
        name.starts_with(prefix) || name == prefix.trim_end_matches('_')
    } else {
        name == pattern
    }
}

/// Finds `fn <name>` and collects `self.<ident> =` assignments (not `==`)
/// in its body. Returns the definition line and the field set.
fn scrub_assignments(ann: &Annotated<'_>, name: &str) -> Option<(usize, BTreeSet<String>)> {
    let toks = &ann.tokens;
    let start = (0..toks.len()).find(|&i| {
        toks[i].kind == TokKind::Ident
            && toks[i].text == "fn"
            && toks.get(i + 1).map(|t| t.text) == Some(name)
    })?;
    let fn_line = toks[start].line;
    // Find the body: first `{` after the signature, then match braces.
    let mut i = start;
    while i < toks.len() && toks[i].kind != TokKind::Punct(b'{') {
        i += 1;
    }
    let mut depth = 0usize;
    let mut fields = BTreeSet::new();
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            // self . <ident> = (but not ==)
            TokKind::Ident
                if toks[i].text == "self"
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct(b'.'))
                    && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Ident)
                    && toks.get(i + 3).map(|t| t.kind) == Some(TokKind::Punct(b'='))
                    && toks.get(i + 4).map(|t| t.kind) != Some(TokKind::Punct(b'=')) =>
            {
                fields.insert(toks[i + 2].text.to_string());
            }
            _ => {}
        }
        i += 1;
    }
    Some((fn_line, fields))
}

/// Collects `(field, line)` pairs of a struct's named fields.
fn struct_fields(ann: &Annotated<'_>, name: &str) -> Vec<(String, usize)> {
    let toks = &ann.tokens;
    let Some(start) = (0..toks.len()).find(|&i| {
        toks[i].kind == TokKind::Ident
            && toks[i].text == "struct"
            && toks.get(i + 1).map(|t| t.text) == Some(name)
    }) else {
        return Vec::new();
    };
    let mut i = start;
    while i < toks.len() && toks[i].kind != TokKind::Punct(b'{') {
        i += 1;
    }
    let mut depth = 0usize;
    let mut fields = Vec::new();
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            // A field is `ident :` at depth 1 (generic bounds and types
            // sit deeper or after the colon and never match `ident :` at
            // depth 1 followed by a type).
            TokKind::Ident
                if depth == 1
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct(b':'))
                    && toks.get(i + 2).map(|t| t.kind) != Some(TokKind::Punct(b':'))
                    && toks[i].text != "pub" =>
            {
                fields.push((toks[i].text.to_string(), toks[i].line));
            }
            _ => {}
        }
        i += 1;
    }
    fields
}
