#![warn(missing_docs)]

//! # custody-lint — workspace invariant linter
//!
//! Every correctness claim this reproduction makes — golden determinism
//! per config knob, bit-for-bit `reference_allocate` equivalence, exact
//! `u128` rational `LocalityKey`s — rests on invariants that tests can
//! only catch probabilistically. This crate enforces them statically, on
//! every `.rs` file in the workspace:
//!
//! 1. **unordered-iteration** — `HashMap`/`HashSet` banned in the
//!    deterministic crates.
//! 2. **float-in-decision-path** — no floats inside allocator decision
//!    modules.
//! 3. **rng-discipline** — no ambient entropy; RNGs flow through named
//!    seeded streams.
//! 4. **wall-clock** — `Instant::now` only at allowlisted
//!    host-measurement sites, cross-checked against the
//!    `RunMetrics::adopt_host_measurements` scrub list.
//! 5. **no-panic** — `unwrap`/`expect`/`panic!` in library code needs a
//!    written justification.
//!
//! Allowlists live in the checked-in `lint.toml`; every entry carries a
//! written reason. Run `cargo run -p custody-lint -- --check` for CI
//! (JSON diagnostics, non-zero exit on violations) or `--list` to dump
//! the effective allowlists.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod config;
pub mod lexer;
pub mod lints;

pub use config::{Config, ConfigError};
pub use lints::Diagnostic;

/// Lints one source file given its repo-relative `path` (used for scoping
/// and allowlists) and contents. Pure per-file checks only — the
/// wall-clock cross-check needs the whole workspace and runs in
/// [`check_workspace`].
pub fn check_source(path: &str, source: &str, cfg: &Config) -> Vec<Diagnostic> {
    let ann = lexer::annotate(source);
    lints::check_file(path, &ann, cfg)
}

/// Walks the workspace at `root`, lints every `.rs` file outside the
/// configured skip list, runs the wall-clock cross-check, and returns all
/// diagnostics sorted by (file, line, lint).
pub fn check_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Diagnostic>> {
    let files = collect_rs_files(root, cfg)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for rel in files {
        let text = fs::read_to_string(root.join(&rel))?;
        sources.push((rel, text));
    }
    let annotated: Vec<(String, lexer::Annotated<'_>)> = sources
        .iter()
        .map(|(rel, text)| (rel.clone(), lexer::annotate(text)))
        .collect();

    let mut diags = Vec::new();
    for (rel, ann) in &annotated {
        diags.extend(lints::check_file(rel, ann, cfg));
    }
    diags.extend(lints::wall_clock_cross_check(&annotated, cfg));
    diags.sort();
    Ok(diags)
}

/// Loads `lint.toml` from the workspace root.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    config::parse(&text).map_err(|e| e.to_string())
}

/// Locates the workspace root: walks up from `start` until a directory
/// containing `lint.toml` (or a root `Cargo.toml` with `[workspace]`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if let Ok(text) = fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collects repo-relative `.rs` paths under `root`, skipping
/// `target/`, dotted directories, and the configured skip prefixes.
fn collect_rs_files(root: &Path, cfg: &Config) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with('.') || name == "target" {
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if cfg.skipped(&rel) {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Serializes diagnostics as a JSON array of
/// `{"lint", "file", "line", "message"}` objects.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(&d.lint),
            json_str(&d.file),
            d.line,
            json_str(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        let d = vec![Diagnostic {
            file: "a\\b.rs".to_string(),
            line: 3,
            lint: "no-panic".to_string(),
            message: "say \"no\"\n".to_string(),
        }];
        let j = to_json(&d);
        assert!(j.contains(r#""file": "a\\b.rs""#), "{j}");
        assert!(j.contains(r#"say \"no\"\n"#), "{j}");
        assert_eq!(to_json(&[]), "[]");
    }
}
