//! The paper's three workloads (§VI-A2).
//!
//! Each generator produces a [`JobSpec`] matching the qualitative structure
//! described in the paper:
//!
//! * **PageRank** — "a graph-based algorithm ... PageRank jobs usually
//!   involve a large amount of network transfers and are thus identified as
//!   network-heavy jobs. The size of the input data file for a PageRank job
//!   is 1 GB." Modelled as an input (parse) stage followed by several
//!   iteration stages, each shuffling the rank vector.
//! * **WordCount** — "the intermediate results of WordCount are
//!   significantly reduced in comparison with the input ... a
//!   representative of network-light jobs. The size of the input file ...
//!   ranges between 4 GB and 8 GB." One map stage plus one tiny reduce.
//! * **Sort** — "not only call\[s\] for extensive computation resources but
//!   also incur\[s\] a large amount of network transmissions. The size of the
//!   input file for a Sort job ranges between 1 GB and 8 GB." Map plus a
//!   full-input-size shuffle into a per-block reduce.
//!
//! Per-task compute constants are calibrated so a 128 MB block costs on the
//! order of a second of CPU — the regime where the input stage dominates
//! short analytics jobs (the paper cites map stages consuming 59 % of
//! MapReduce job lifetimes).

use custody_simcore::dist::{Distribution, Uniform};
use custody_simcore::{SimDuration, SimRng};

use crate::spec::{JobSpec, ShuffleVolume, StageSpec, StageWidth};

const GB: u64 = 1_000_000_000;

/// The three evaluation workloads, plus two extension workloads for
/// broader studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Iterative, network-heavy graph computation.
    PageRank,
    /// Map-heavy, network-light aggregation.
    WordCount,
    /// Compute- and shuffle-heavy repartition.
    Sort,
    /// Extension: a selective SQL-style scan — map-only, the purest
    /// input-locality workload (Shark-style queries, the paper's \[18\]).
    SqlScan,
    /// Extension: k-means-style iterative ML — like PageRank but with
    /// heavier per-iteration compute and a tiny model shuffle (the
    /// "machine learning algorithms for recommendation systems" of §II).
    KMeans,
}

impl WorkloadKind {
    /// The paper's three workloads, in its presentation order.
    pub const ALL: [WorkloadKind; 3] = [
        WorkloadKind::PageRank,
        WorkloadKind::WordCount,
        WorkloadKind::Sort,
    ];

    /// Every workload, including the extension generators.
    pub const EXTENDED: [WorkloadKind; 5] = [
        WorkloadKind::PageRank,
        WorkloadKind::WordCount,
        WorkloadKind::Sort,
        WorkloadKind::SqlScan,
        WorkloadKind::KMeans,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::PageRank => "pagerank",
            WorkloadKind::WordCount => "wordcount",
            WorkloadKind::Sort => "sort",
            WorkloadKind::SqlScan => "sqlscan",
            WorkloadKind::KMeans => "kmeans",
        }
    }

    /// Number of PageRank iterations modelled (the paper notes "multiple
    /// iterations involved in the PageRank algorithm").
    pub const PAGERANK_ITERATIONS: usize = 5;

    /// Number of k-means iterations modelled.
    pub const KMEANS_ITERATIONS: usize = 8;

    /// Generates the `seq`-th job of this workload, drawing its input size
    /// from the paper's per-workload range.
    pub fn generate_job(self, seq: usize, rng: &mut SimRng) -> JobSpec {
        match self {
            WorkloadKind::PageRank => pagerank_job(seq, rng),
            WorkloadKind::WordCount => wordcount_job(seq, rng),
            WorkloadKind::Sort => sort_job(seq, rng),
            WorkloadKind::SqlScan => sqlscan_job(seq, rng),
            WorkloadKind::KMeans => kmeans_job(seq, rng),
        }
    }

    /// The input-size range `[lo, hi]` in bytes for this workload.
    pub fn input_range(self) -> (u64, u64) {
        match self {
            WorkloadKind::PageRank => (GB, GB),
            WorkloadKind::WordCount => (4 * GB, 8 * GB),
            WorkloadKind::Sort => (GB, 8 * GB),
            WorkloadKind::SqlScan => (2 * GB, 16 * GB),
            WorkloadKind::KMeans => (GB, 2 * GB),
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn draw_input_bytes(kind: WorkloadKind, rng: &mut SimRng) -> u64 {
    let (lo, hi) = kind.input_range();
    if lo == hi {
        lo
    } else {
        Uniform::new(lo as f64, hi as f64).sample(rng) as u64
    }
}

/// PageRank: parse stage + `PAGERANK_ITERATIONS` iteration stages, each
/// one task per input block, shuffling ~10 % of the input (the rank/edge
/// messages) every iteration.
fn pagerank_job(seq: usize, rng: &mut SimRng) -> JobSpec {
    let input_bytes = draw_input_bytes(WorkloadKind::PageRank, rng);
    let mut downstream = Vec::with_capacity(WorkloadKind::PAGERANK_ITERATIONS);
    for i in 0..WorkloadKind::PAGERANK_ITERATIONS {
        downstream.push(StageSpec {
            name: format!("iter-{i}"),
            width: StageWidth::PerInputBlock,
            compute_per_task: SimDuration::from_millis(400),
            shuffle: ShuffleVolume::InputFraction(0.10),
            // Each iteration depends on the previous stage.
            deps: vec![i],
        });
    }
    JobSpec {
        name: format!("pagerank-{seq:03}"),
        input_bytes,
        input_compute_per_block: SimDuration::from_millis(800),
        downstream,
    }
}

/// WordCount: map stage + a tiny fixed-width reduce shuffling ~0.1 % of
/// the input (aggregated word counts).
fn wordcount_job(seq: usize, rng: &mut SimRng) -> JobSpec {
    let input_bytes = draw_input_bytes(WorkloadKind::WordCount, rng);
    JobSpec {
        name: format!("wordcount-{seq:03}"),
        input_bytes,
        input_compute_per_block: SimDuration::from_millis(600),
        downstream: vec![StageSpec {
            name: "reduce".into(),
            width: StageWidth::Fixed(4),
            compute_per_task: SimDuration::from_millis(200),
            shuffle: ShuffleVolume::InputFraction(0.001),
            deps: vec![0],
        }],
    }
}

/// Sort: map stage + a per-block reduce that shuffles the full input
/// (repartition) and sorts it.
fn sort_job(seq: usize, rng: &mut SimRng) -> JobSpec {
    let input_bytes = draw_input_bytes(WorkloadKind::Sort, rng);
    JobSpec {
        name: format!("sort-{seq:03}"),
        input_bytes,
        input_compute_per_block: SimDuration::from_millis(500),
        downstream: vec![StageSpec {
            name: "reduce".into(),
            width: StageWidth::PerInputBlock,
            compute_per_task: SimDuration::from_millis(700),
            shuffle: ShuffleVolume::InputFraction(1.0),
            deps: vec![0],
        }],
    }
}

/// SQL scan: a single map stage filtering its input; no downstream
/// stages at all, so locality is the entire story.
fn sqlscan_job(seq: usize, rng: &mut SimRng) -> JobSpec {
    let input_bytes = draw_input_bytes(WorkloadKind::SqlScan, rng);
    JobSpec::map_only(
        format!("sqlscan-{seq:03}"),
        input_bytes,
        SimDuration::from_millis(300),
    )
}

/// K-means: parse stage + `KMEANS_ITERATIONS` compute-heavy iterations,
/// each broadcasting/collecting a tiny model (centroids) over the
/// network.
fn kmeans_job(seq: usize, rng: &mut SimRng) -> JobSpec {
    let input_bytes = draw_input_bytes(WorkloadKind::KMeans, rng);
    let mut downstream = Vec::with_capacity(WorkloadKind::KMEANS_ITERATIONS);
    for i in 0..WorkloadKind::KMEANS_ITERATIONS {
        downstream.push(StageSpec {
            name: format!("iter-{i}"),
            width: StageWidth::PerInputBlock,
            compute_per_task: SimDuration::from_millis(900),
            shuffle: ShuffleVolume::PerTaskBytes(1_000_000), // ~1 MB of centroids
            deps: vec![i],
        });
    }
    JobSpec {
        name: format!("kmeans-{seq:03}"),
        input_bytes,
        input_compute_per_block: SimDuration::from_millis(700),
        downstream,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_shape() {
        let mut rng = SimRng::seed_from_u64(1);
        let j = WorkloadKind::PageRank.generate_job(0, &mut rng);
        assert_eq!(j.input_bytes, GB);
        assert_eq!(j.downstream.len(), WorkloadKind::PAGERANK_ITERATIONS);
        assert_eq!(j.num_stages(), 1 + WorkloadKind::PAGERANK_ITERATIONS);
        assert_eq!(j.name, "pagerank-000");
        // Chain dependencies: iter-i depends on stage i.
        for (i, s) in j.downstream.iter().enumerate() {
            assert_eq!(s.deps, vec![i]);
        }
    }

    #[test]
    fn wordcount_sizes_in_range() {
        let mut rng = SimRng::seed_from_u64(2);
        for seq in 0..50 {
            let j = WorkloadKind::WordCount.generate_job(seq, &mut rng);
            assert!(
                (4 * GB..=8 * GB).contains(&j.input_bytes),
                "{}",
                j.input_bytes
            );
            assert_eq!(j.downstream.len(), 1);
        }
    }

    #[test]
    fn sort_sizes_in_range_and_full_shuffle() {
        let mut rng = SimRng::seed_from_u64(3);
        for seq in 0..50 {
            let j = WorkloadKind::Sort.generate_job(seq, &mut rng);
            assert!((GB..=8 * GB).contains(&j.input_bytes));
            assert_eq!(j.downstream[0].shuffle, ShuffleVolume::InputFraction(1.0));
            assert_eq!(j.downstream[0].width, StageWidth::PerInputBlock);
        }
    }

    #[test]
    fn wordcount_is_network_light_relative_to_sort() {
        let mut rng = SimRng::seed_from_u64(4);
        let wc = WorkloadKind::WordCount.generate_job(0, &mut rng);
        let sort = WorkloadKind::Sort.generate_job(0, &mut rng);
        let wc_shuffle = wc.downstream[0].shuffle.resolve(wc.input_bytes, 4);
        let sort_tasks = 8;
        let sort_shuffle = sort.downstream[0]
            .shuffle
            .resolve(sort.input_bytes, sort_tasks);
        assert!(
            (wc_shuffle * 4) < sort_shuffle * sort_tasks as u64 / 100,
            "WordCount shuffles <1% of Sort's volume"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for seq in 0..10 {
            assert_eq!(
                WorkloadKind::Sort.generate_job(seq, &mut a),
                WorkloadKind::Sort.generate_job(seq, &mut b)
            );
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(WorkloadKind::PageRank.to_string(), "pagerank");
        assert_eq!(WorkloadKind::ALL.len(), 3);
        assert_eq!(WorkloadKind::EXTENDED.len(), 5);
        assert_eq!(WorkloadKind::SqlScan.to_string(), "sqlscan");
        assert_eq!(WorkloadKind::KMeans.to_string(), "kmeans");
    }

    #[test]
    fn sqlscan_is_map_only() {
        let mut rng = SimRng::seed_from_u64(20);
        for seq in 0..20 {
            let j = WorkloadKind::SqlScan.generate_job(seq, &mut rng);
            assert_eq!(j.num_stages(), 1);
            assert!((2 * GB..=16 * GB).contains(&j.input_bytes));
        }
    }

    #[test]
    fn kmeans_iterations_shuffle_tiny_models() {
        let mut rng = SimRng::seed_from_u64(21);
        let j = WorkloadKind::KMeans.generate_job(0, &mut rng);
        assert_eq!(j.downstream.len(), WorkloadKind::KMEANS_ITERATIONS);
        for (i, st) in j.downstream.iter().enumerate() {
            assert_eq!(st.deps, vec![i], "chain dependency");
            assert_eq!(st.shuffle.resolve(j.input_bytes, 8), 1_000_000);
        }
        // Network-light per iteration compared to PageRank.
        let pr = WorkloadKind::PageRank.generate_job(0, &mut rng);
        let pr_shuffle = pr.downstream[0].shuffle.resolve(pr.input_bytes, 8);
        assert!(pr_shuffle > 10 * 1_000_000);
    }

    #[test]
    fn resolved_pagerank_stages_are_per_block() {
        let mut rng = SimRng::seed_from_u64(5);
        let j = WorkloadKind::PageRank.generate_job(0, &mut rng);
        let stages = j.resolve_stages(8);
        for s in &stages {
            assert_eq!(s.num_tasks, 8);
            // 10% of 1 GB over 8 tasks = 12.5 MB/task.
            assert_eq!(s.shuffle_bytes_per_task, 12_500_000);
        }
    }
}
