//! Declarative job shapes.
//!
//! A [`JobSpec`] describes a job before its input dataset exists: the input
//! size, the per-block computation of the input (map) stage, and the
//! downstream stages. Once the dataset is registered with the NameNode and
//! its block count is known, [`JobSpec::resolve_stages`] turns the
//! symbolic stage widths and shuffle volumes into concrete numbers.

use custody_simcore::SimDuration;

/// How many tasks a downstream stage launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageWidth {
    /// A fixed task count.
    Fixed(usize),
    /// One task per input block of the job (common for per-partition
    /// stages such as PageRank iterations or Sort's reduce).
    PerInputBlock,
}

impl StageWidth {
    /// Resolves to a concrete task count given the job's input block count.
    pub fn resolve(self, num_blocks: usize) -> usize {
        match self {
            StageWidth::Fixed(n) => n.max(1),
            StageWidth::PerInputBlock => num_blocks.max(1),
        }
    }
}

/// How much intermediate data a downstream stage shuffles in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShuffleVolume {
    /// Each task reads a fixed number of bytes over the network.
    PerTaskBytes(u64),
    /// The stage as a whole shuffles `fraction × input_bytes`, split evenly
    /// across its tasks. `1.0` models Sort's full repartition; small values
    /// model aggregated intermediates (WordCount).
    InputFraction(f64),
}

impl ShuffleVolume {
    /// Resolves to per-task bytes.
    pub fn resolve(self, input_bytes: u64, num_tasks: usize) -> u64 {
        match self {
            ShuffleVolume::PerTaskBytes(b) => b,
            ShuffleVolume::InputFraction(f) => {
                debug_assert!(f >= 0.0);
                ((input_bytes as f64 * f) / num_tasks.max(1) as f64) as u64
            }
        }
    }
}

/// A downstream (non-input) stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Stage label for reports (e.g. `"reduce"`, `"iter-3"`).
    pub name: String,
    /// Task count.
    pub width: StageWidth,
    /// Pure computation per task.
    pub compute_per_task: SimDuration,
    /// Network bytes each task must fetch before computing.
    pub shuffle: ShuffleVolume,
    /// Indices of stages this one depends on. `0` is the input stage;
    /// downstream stage `i` (0-based in `JobSpec::downstream`) is overall
    /// stage `i + 1`. Every stage must depend only on earlier stages.
    pub deps: Vec<usize>,
}

/// A resolved downstream stage (concrete task count / shuffle bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedStage {
    /// Stage label.
    pub name: String,
    /// Concrete task count.
    pub num_tasks: usize,
    /// Pure computation per task.
    pub compute_per_task: SimDuration,
    /// Per-task shuffle bytes.
    pub shuffle_bytes_per_task: u64,
    /// Dependencies (overall stage indices, `0` = input stage).
    pub deps: Vec<usize>,
}

/// A declarative job description.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job label (e.g. `"pagerank-007"`).
    pub name: String,
    /// Total input bytes; the job's input stage launches one task per
    /// block of this much data.
    pub input_bytes: u64,
    /// Pure computation each input task performs after reading its block.
    pub input_compute_per_block: SimDuration,
    /// Downstream stages in submission order.
    pub downstream: Vec<StageSpec>,
}

impl JobSpec {
    /// A single-stage (map-only) job: reads its input and computes.
    pub fn map_only(
        name: impl Into<String>,
        input_bytes: u64,
        input_compute_per_block: SimDuration,
    ) -> Self {
        JobSpec {
            name: name.into(),
            input_bytes,
            input_compute_per_block,
            downstream: Vec::new(),
        }
    }

    /// Total number of stages including the input stage.
    pub fn num_stages(&self) -> usize {
        1 + self.downstream.len()
    }

    /// Resolves downstream stages given the concrete input block count.
    ///
    /// # Panics
    ///
    /// Panics if any stage's dependency list references itself or a later
    /// stage (the DAG must be topologically ordered).
    pub fn resolve_stages(&self, num_blocks: usize) -> Vec<ResolvedStage> {
        self.downstream
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let overall = i + 1;
                for &d in &s.deps {
                    assert!(
                        d < overall,
                        "stage {overall} ({}) depends on later stage {d}",
                        s.name
                    );
                }
                let num_tasks = s.width.resolve(num_blocks);
                ResolvedStage {
                    name: s.name.clone(),
                    num_tasks,
                    compute_per_task: s.compute_per_task,
                    shuffle_bytes_per_task: s.shuffle.resolve(self.input_bytes, num_tasks),
                    deps: s.deps.clone(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_resolution() {
        assert_eq!(StageWidth::Fixed(4).resolve(100), 4);
        assert_eq!(StageWidth::Fixed(0).resolve(100), 1, "clamped to 1");
        assert_eq!(StageWidth::PerInputBlock.resolve(8), 8);
        assert_eq!(StageWidth::PerInputBlock.resolve(0), 1);
    }

    #[test]
    fn shuffle_resolution() {
        assert_eq!(ShuffleVolume::PerTaskBytes(500).resolve(1_000_000, 4), 500);
        assert_eq!(
            ShuffleVolume::InputFraction(1.0).resolve(1_000_000, 4),
            250_000
        );
        assert_eq!(
            ShuffleVolume::InputFraction(0.1).resolve(1_000_000, 2),
            50_000
        );
        assert_eq!(ShuffleVolume::InputFraction(0.0).resolve(1_000_000, 2), 0);
    }

    #[test]
    fn map_only_job() {
        let j = JobSpec::map_only("wc", 1_000, SimDuration::from_millis(100));
        assert_eq!(j.num_stages(), 1);
        assert!(j.resolve_stages(8).is_empty());
    }

    #[test]
    fn resolve_stages_concretizes() {
        let j = JobSpec {
            name: "sort".into(),
            input_bytes: 1_024,
            input_compute_per_block: SimDuration::from_millis(10),
            downstream: vec![StageSpec {
                name: "reduce".into(),
                width: StageWidth::PerInputBlock,
                compute_per_task: SimDuration::from_millis(20),
                shuffle: ShuffleVolume::InputFraction(1.0),
                deps: vec![0],
            }],
        };
        let stages = j.resolve_stages(8);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].num_tasks, 8);
        assert_eq!(stages[0].shuffle_bytes_per_task, 128);
        assert_eq!(stages[0].deps, vec![0]);
    }

    #[test]
    #[should_panic(expected = "depends on later stage")]
    fn forward_dependency_rejected() {
        let j = JobSpec {
            name: "bad".into(),
            input_bytes: 1,
            input_compute_per_block: SimDuration::ZERO,
            downstream: vec![StageSpec {
                name: "s".into(),
                width: StageWidth::Fixed(1),
                compute_per_task: SimDuration::ZERO,
                shuffle: ShuffleVolume::PerTaskBytes(0),
                deps: vec![1],
            }],
        };
        let _ = j.resolve_stages(1);
    }

    #[test]
    fn chain_of_stages_resolves_in_order() {
        let mk = |name: &str, deps: Vec<usize>| StageSpec {
            name: name.into(),
            width: StageWidth::Fixed(2),
            compute_per_task: SimDuration::from_millis(1),
            shuffle: ShuffleVolume::PerTaskBytes(10),
            deps,
        };
        let j = JobSpec {
            name: "pr".into(),
            input_bytes: 100,
            input_compute_per_block: SimDuration::ZERO,
            downstream: vec![mk("a", vec![0]), mk("b", vec![1]), mk("c", vec![1, 2])],
        };
        let stages = j.resolve_stages(4);
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[2].deps, vec![1, 2]);
    }
}
