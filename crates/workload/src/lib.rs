#![warn(missing_docs)]

//! # custody-workload
//!
//! Applications, jobs, stages and the paper's three workloads.
//!
//! The paper's application model (§III-A): an application `A_i` consists of
//! `ρ_i` jobs; each job is a DAG of tasks whose **input tasks** each read
//! one block of the job's input dataset. Only input tasks can be
//! data-local — "for tasks that depend on multiple upstream tasks, it is
//! unlikely for them to achieve data locality" — so downstream stages are
//! modelled by their computation and shuffle volume only.
//!
//! The evaluation (§VI-A2) drives three workloads:
//!
//! * **PageRank** — network-heavy, iterative; 1 GB input per job.
//! * **WordCount** — network-light; 4–8 GB input, tiny reduce.
//! * **Sort** — compute- and network-heavy; 1–8 GB input, full-size shuffle.
//!
//! and submits "30 jobs with an independent submission schedule to each
//! \[of four\] application\[s\]", inter-arrival times exponential with mean
//! 4 s (Facebook trace).
//!
//! * [`spec`] — [`JobSpec`]/[`StageSpec`]: declarative job shapes.
//! * [`generator`] — [`WorkloadKind`]: produces the paper's job specs.
//! * [`app`] — application identities and campaign descriptions.
//! * [`arrival`] — seeded submission schedules.

pub mod app;
pub mod arrival;
pub mod generator;
pub mod spec;

pub use app::{AppId, ApplicationSpec, Campaign, DatasetMode, JobId};
pub use arrival::{Submission, SubmissionSchedule};
pub use generator::WorkloadKind;
pub use spec::{JobSpec, ShuffleVolume, StageSpec, StageWidth};
