//! Applications and experiment campaigns.
//!
//! "In all the following experiments, we register four applications to the
//! cluster manager and submit 30 jobs with an independent submission
//! schedule to each application" (§VI-A2). A [`Campaign`] captures that
//! setup declaratively: which applications exist, what workload each runs,
//! how many jobs each submits, and how their input datasets are drawn.

use custody_simcore::define_id;

use crate::generator::WorkloadKind;

define_id!(
    /// An application registered with the cluster manager.
    pub struct AppId, "app"
);

define_id!(
    /// A job, globally unique across the whole simulation.
    pub struct JobId, "job"
);

/// Static description of one application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplicationSpec {
    /// Display name.
    pub name: String,
    /// The workload this application's jobs run.
    pub workload: WorkloadKind,
}

/// How jobs obtain their input datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DatasetMode {
    /// Every job reads a fresh, private dataset (the paper's setting: each
    /// job "runs on a subset of this dump", with its own input file).
    FreshPerJob,
    /// Jobs draw from a shared pool of `pool_size` datasets per
    /// application, sampled with Zipf skew `skew` — hot datasets emerge,
    /// exercising the popularity-replication extension and the
    /// "executors storing popular blocks might be desired by multiple
    /// applications" contention of §IV-A.
    SharedPool {
        /// Datasets in the pool.
        pool_size: usize,
        /// Zipf exponent; `0.0` = uniform.
        skew: f64,
    },
}

/// A complete experiment workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// The applications sharing the cluster.
    pub apps: Vec<ApplicationSpec>,
    /// Jobs each application submits.
    pub jobs_per_app: usize,
    /// Mean inter-arrival time between consecutive jobs of one
    /// application, in seconds (exponential; paper: 4 s).
    pub mean_interarrival_secs: f64,
    /// Input-dataset regime.
    pub dataset_mode: DatasetMode,
}

impl Campaign {
    /// The paper's setup for one workload: four applications all running
    /// `workload`, 30 jobs each, exponential arrivals with mean 4 s,
    /// private datasets.
    pub fn paper(workload: WorkloadKind) -> Self {
        Campaign {
            apps: (0..4)
                .map(|i| ApplicationSpec {
                    name: format!("{workload}-app-{i}"),
                    workload,
                })
                .collect(),
            jobs_per_app: 30,
            mean_interarrival_secs: 4.0,
            dataset_mode: DatasetMode::FreshPerJob,
        }
    }

    /// A mixed campaign: one application per workload plus a second
    /// PageRank application, exercising inter-application contention across
    /// heterogeneous demands.
    pub fn mixed() -> Self {
        let kinds = [
            WorkloadKind::PageRank,
            WorkloadKind::WordCount,
            WorkloadKind::Sort,
            WorkloadKind::PageRank,
        ];
        Campaign {
            apps: kinds
                .iter()
                .enumerate()
                .map(|(i, &workload)| ApplicationSpec {
                    name: format!("{workload}-app-{i}"),
                    workload,
                })
                .collect(),
            jobs_per_app: 30,
            mean_interarrival_secs: 4.0,
            dataset_mode: DatasetMode::FreshPerJob,
        }
    }

    /// Scales the campaign down (fewer jobs) for fast tests and examples.
    pub fn with_jobs_per_app(mut self, jobs: usize) -> Self {
        self.jobs_per_app = jobs;
        self
    }

    /// Overrides the arrival intensity.
    pub fn with_mean_interarrival(mut self, secs: f64) -> Self {
        assert!(secs > 0.0);
        self.mean_interarrival_secs = secs;
        self
    }

    /// Overrides the dataset regime.
    pub fn with_dataset_mode(mut self, mode: DatasetMode) -> Self {
        self.dataset_mode = mode;
        self
    }

    /// Number of applications.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Total jobs across all applications.
    pub fn total_jobs(&self) -> usize {
        self.num_apps() * self.jobs_per_app
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_campaign_matches_evaluation() {
        let c = Campaign::paper(WorkloadKind::Sort);
        assert_eq!(c.num_apps(), 4);
        assert_eq!(c.jobs_per_app, 30);
        assert_eq!(c.total_jobs(), 120);
        assert_eq!(c.mean_interarrival_secs, 4.0);
        assert!(c.apps.iter().all(|a| a.workload == WorkloadKind::Sort));
        assert_eq!(c.apps[2].name, "sort-app-2");
    }

    #[test]
    fn mixed_campaign_covers_all_workloads() {
        let c = Campaign::mixed();
        assert_eq!(c.num_apps(), 4);
        for kind in WorkloadKind::ALL {
            assert!(c.apps.iter().any(|a| a.workload == kind));
        }
    }

    #[test]
    fn builders_override() {
        let c = Campaign::paper(WorkloadKind::WordCount)
            .with_jobs_per_app(5)
            .with_mean_interarrival(1.5)
            .with_dataset_mode(DatasetMode::SharedPool {
                pool_size: 3,
                skew: 1.0,
            });
        assert_eq!(c.total_jobs(), 20);
        assert_eq!(c.mean_interarrival_secs, 1.5);
        assert!(matches!(c.dataset_mode, DatasetMode::SharedPool { .. }));
    }

    #[test]
    fn ids_display() {
        assert_eq!(format!("{}", AppId::new(1)), "app-1");
        assert_eq!(format!("{}", JobId::new(9)), "job-9");
    }
}
