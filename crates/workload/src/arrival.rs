//! Job submission schedules.
//!
//! "We generate a common job submission schedule that is shared by all the
//! experiments to minimize the influence of random factors. The
//! distribution of inter-arrival times is roughly exponential with a mean
//! of 4 seconds in accordance with the Facebook trace" (§VI-A2).
//!
//! [`SubmissionSchedule::generate`] draws, per application, an independent
//! sequence of exponential gaps, then merges all applications' submissions
//! into one global timeline. The schedule depends only on the seed and the
//! campaign shape, so Custody and the baseline replay identical workloads.

use custody_simcore::dist::{Distribution, Exponential};
use custody_simcore::{SimRng, SimTime};

use crate::app::{AppId, Campaign};

/// One job submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submission {
    /// When the user submits the job.
    pub time: SimTime,
    /// The submitting application.
    pub app: AppId,
    /// Sequence number of this job within its application (0-based).
    pub seq: usize,
}

/// A time-ordered list of submissions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmissionSchedule {
    submissions: Vec<Submission>,
}

impl SubmissionSchedule {
    /// Generates the schedule for `campaign` from `seed`.
    pub fn generate(campaign: &Campaign, seed: u64) -> Self {
        let gap = Exponential::with_mean(campaign.mean_interarrival_secs);
        let mut submissions = Vec::with_capacity(campaign.total_jobs());
        for app_idx in 0..campaign.num_apps() {
            let mut rng = SimRng::for_stream(seed, &format!("arrivals/app-{app_idx}"));
            let mut t = SimTime::ZERO;
            for seq in 0..campaign.jobs_per_app {
                t += gap.sample_duration(&mut rng);
                submissions.push(Submission {
                    time: t,
                    app: AppId::new(app_idx),
                    seq,
                });
            }
        }
        // Merge deterministically: by time, then app, then seq.
        submissions.sort_unstable_by_key(|s| (s.time, s.app, s.seq));
        SubmissionSchedule { submissions }
    }

    /// The submissions in time order.
    pub fn submissions(&self) -> &[Submission] {
        &self.submissions
    }

    /// Number of submissions.
    pub fn len(&self) -> usize {
        self.submissions.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.submissions.is_empty()
    }

    /// Time of the final submission.
    pub fn last_time(&self) -> Option<SimTime> {
        self.submissions.last().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadKind;

    fn campaign() -> Campaign {
        Campaign::paper(WorkloadKind::WordCount)
    }

    #[test]
    fn schedule_has_all_jobs_in_order() {
        let s = SubmissionSchedule::generate(&campaign(), 42);
        assert_eq!(s.len(), 120);
        assert!(s.submissions().windows(2).all(|w| w[0].time <= w[1].time));
        for app in 0..4 {
            let seqs: Vec<usize> = s
                .submissions()
                .iter()
                .filter(|sub| sub.app == AppId::new(app))
                .map(|sub| sub.seq)
                .collect();
            assert_eq!(seqs.len(), 30);
            // Each app's jobs appear in sequence order.
            assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = SubmissionSchedule::generate(&campaign(), 42);
        let b = SubmissionSchedule::generate(&campaign(), 42);
        assert_eq!(a, b);
        let c = SubmissionSchedule::generate(&campaign(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_gap_approximates_campaign_setting() {
        let big = campaign().with_jobs_per_app(2000);
        let s = SubmissionSchedule::generate(&big, 7);
        // Per-app mean gap should be close to 4s.
        let app0: Vec<SimTime> = s
            .submissions()
            .iter()
            .filter(|sub| sub.app == AppId::new(0))
            .map(|sub| sub.time)
            .collect();
        let total = app0.last().unwrap().as_secs_f64();
        let mean_gap = total / app0.len() as f64;
        assert!(
            (mean_gap - 4.0).abs() < 0.3,
            "mean gap {mean_gap} should be ~4s"
        );
    }

    #[test]
    fn adding_an_app_does_not_change_existing_streams() {
        let c4 = campaign();
        let mut c5 = campaign();
        c5.apps.push(c5.apps[0].clone());
        let s4 = SubmissionSchedule::generate(&c4, 9);
        let s5 = SubmissionSchedule::generate(&c5, 9);
        for app in 0..4 {
            let times4: Vec<SimTime> = s4
                .submissions()
                .iter()
                .filter(|s| s.app == AppId::new(app))
                .map(|s| s.time)
                .collect();
            let times5: Vec<SimTime> = s5
                .submissions()
                .iter()
                .filter(|s| s.app == AppId::new(app))
                .map(|s| s.time)
                .collect();
            assert_eq!(times4, times5, "app {app} stream perturbed");
        }
    }

    #[test]
    fn last_time_and_empty() {
        let s = SubmissionSchedule::generate(&campaign().with_jobs_per_app(1), 1);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.last_time().unwrap(), s.submissions().last().unwrap().time);
    }
}
