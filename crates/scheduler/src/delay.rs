//! Delay scheduling (Zaharia et al., EuroSys 2010 — the paper's \[22\]),
//! implemented the way Spark's `TaskSetManager` actually does it.
//!
//! The locality-wait clock is **per task set** (one job stage), not per
//! task. Each set starts at the `NODE_LOCAL` level; when the set has gone
//! longer than the wait threshold without launching a local task, it
//! *downgrades* to `ANY` and its remaining tasks accept whatever executor
//! is offered. A local launch resets the set back to `NODE_LOCAL`. This
//! cascade is why a single unlucky stall can send a burst of tasks
//! non-local — the per-job locality variance visible in the paper's
//! Fig. 7 ("some jobs only have less than 35 % of local tasks").
//!
//! Offer handling, in Spark's order:
//!
//! 1. A data-local task (earliest set first, FIFO within a set) launches
//!    immediately and resets its set's clock and level.
//! 2. A preference-free task (downstream stages) launches immediately —
//!    waiting buys nothing.
//! 3. Otherwise only non-local placements remain: the earliest set whose
//!    clock has expired launches its oldest task at `ANY`; if every set is
//!    still within its wait, the offer is declined with the time until the
//!    earliest expiry.

use std::collections::BTreeMap;

use custody_dfs::NodeId;
use custody_simcore::{SimDuration, SimTime};
use custody_workload::JobId;

use crate::{Placement, RunnableTask, TaskScheduler};

/// Per-task-set delay-scheduling state.
#[derive(Debug, Clone, Copy)]
struct SetState {
    /// Last time the set launched a local task (or was first seen).
    clock_start: SimTime,
    /// Whether the set has downgraded to the `ANY` level.
    allow_any: bool,
}

/// Delay scheduling with a fixed locality-wait threshold.
///
/// ```
/// use custody_scheduler::{DelayScheduler, Placement, RunnableTask, TaskScheduler};
/// use custody_dfs::NodeId;
/// use custody_simcore::{SimDuration, SimTime};
/// use custody_workload::JobId;
///
/// let mut sched = DelayScheduler::new(SimDuration::from_secs(3));
/// let task = RunnableTask {
///     job: JobId::new(0), stage: 0, task_index: 0,
///     preferred_nodes: [NodeId::new(5)].into(),
///     runnable_since: SimTime::ZERO,
/// };
/// // Offered the wrong node early: the task holds out for locality.
/// let p = sched.on_offer(NodeId::new(1), &[task.clone()], SimTime::from_secs(1));
/// assert!(matches!(p, Placement::Decline { .. }));
/// // Offered its preferred node: immediate local launch.
/// let p = sched.on_offer(NodeId::new(5), &[task], SimTime::from_secs(1));
/// assert!(matches!(p, Placement::Launch { local: true, .. }));
/// ```
#[derive(Debug, Clone)]
pub struct DelayScheduler {
    wait_threshold: SimDuration,
    sets: BTreeMap<(JobId, usize), SetState>,
}

impl DelayScheduler {
    /// Creates the scheduler. A zero threshold yields locality-first
    /// behaviour (prefer local, never wait).
    pub fn new(wait_threshold: SimDuration) -> Self {
        DelayScheduler {
            wait_threshold,
            sets: BTreeMap::new(),
        }
    }

    /// The configured wait threshold.
    pub fn wait_threshold(&self) -> SimDuration {
        self.wait_threshold
    }

    fn set_state(&mut self, key: (JobId, usize), first_runnable: SimTime) -> &mut SetState {
        self.sets.entry(key).or_insert(SetState {
            clock_start: first_runnable,
            allow_any: false,
        })
    }
}

fn launch(task: &RunnableTask, local: bool) -> Placement {
    Placement::Launch {
        job: task.job,
        stage: task.stage,
        task_index: task.task_index,
        local,
    }
}

/// Task sets in FIFO order: keyed by the earliest `runnable_since` in the
/// set, then job id, then stage.
fn sets_in_order(runnable: &[RunnableTask]) -> Vec<((JobId, usize), SimTime)> {
    let mut earliest: BTreeMap<(JobId, usize), SimTime> = BTreeMap::new();
    for t in runnable {
        let e = earliest.entry((t.job, t.stage)).or_insert(t.runnable_since);
        *e = (*e).min(t.runnable_since);
    }
    let mut sets: Vec<((JobId, usize), SimTime)> = earliest.into_iter().collect();
    sets.sort_by_key(|&((job, stage), since)| (since, job, stage));
    sets
}

impl TaskScheduler for DelayScheduler {
    fn name(&self) -> &'static str {
        "delay"
    }

    fn on_offer(&mut self, node: NodeId, runnable: &[RunnableTask], now: SimTime) -> Placement {
        if runnable.is_empty() {
            return Placement::NoWork;
        }
        let sets = sets_in_order(runnable);

        // 1. Local task: earliest set first, FIFO within the set. A local
        //    launch resets the set's clock and level.
        for &(key, _) in &sets {
            let candidate = runnable
                .iter()
                .filter(|t| (t.job, t.stage) == key && t.local_on(node))
                .min_by_key(|t| (t.runnable_since, t.task_index));
            if let Some(task) = candidate {
                let state = self.set_state(key, task.runnable_since);
                state.clock_start = now;
                state.allow_any = false;
                return launch(task, true);
            }
        }

        // 2. Preference-free task (no locality to wait for).
        if let Some(task) = runnable
            .iter()
            .filter(|t| !t.has_preference())
            .min_by_key(|t| (t.runnable_since, t.job, t.stage, t.task_index))
        {
            return launch(task, false);
        }

        // 3. Non-local placements: expired sets launch, others wait.
        let mut earliest_expiry: Option<SimDuration> = None;
        for &(key, first_runnable) in &sets {
            let threshold = self.wait_threshold;
            let state = self.set_state(key, first_runnable);
            if !state.allow_any {
                let waited = now.saturating_since(state.clock_start);
                if waited >= threshold {
                    state.allow_any = true;
                } else {
                    let remaining = threshold - waited;
                    earliest_expiry = Some(match earliest_expiry {
                        Some(e) => e.min(remaining),
                        None => remaining,
                    });
                    continue;
                }
            }
            let task = runnable
                .iter()
                .filter(|t| (t.job, t.stage) == key)
                .min_by_key(|t| (t.runnable_since, t.task_index))
                .expect("set has at least one task"); // lint: allow(panic) — set keys are derived from runnable, so each has a task
            return launch(task, false);
        }
        Placement::Decline {
            retry_after: earliest_expiry.expect("some set must be waiting"), // lint: allow(panic) — reached only after a waiting set recorded its expiry
        }
    }

    fn clone_box(&self) -> Box<dyn TaskScheduler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(
        job: usize,
        stage: usize,
        idx: usize,
        nodes: &[usize],
        since_secs: u64,
    ) -> RunnableTask {
        RunnableTask {
            job: JobId::new(job),
            stage,
            task_index: idx,
            preferred_nodes: nodes.iter().map(|&n| NodeId::new(n)).collect(),
            runnable_since: SimTime::from_secs(since_secs),
        }
    }

    fn sched() -> DelayScheduler {
        DelayScheduler::new(SimDuration::from_secs(3))
    }

    #[test]
    fn empty_is_no_work() {
        let mut s = sched();
        assert_eq!(
            s.on_offer(NodeId::new(0), &[], SimTime::ZERO),
            Placement::NoWork
        );
    }

    #[test]
    fn local_task_launches_immediately() {
        let mut s = sched();
        let tasks = vec![task(0, 0, 0, &[1], 0), task(0, 0, 1, &[0], 0)];
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::from_secs(1));
        assert_eq!(
            p,
            Placement::Launch {
                job: JobId::new(0),
                stage: 0,
                task_index: 1,
                local: true
            }
        );
    }

    #[test]
    fn earlier_set_wins_local_slot() {
        let mut s = sched();
        let tasks = vec![task(1, 0, 0, &[0], 5), task(0, 0, 1, &[0], 2)];
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::from_secs(6));
        assert!(matches!(
            p,
            Placement::Launch { job, local: true, .. } if job == JobId::new(0)
        ));
    }

    #[test]
    fn preference_free_task_fills_nonlocal_slot() {
        let mut s = sched();
        let tasks = vec![task(0, 0, 0, &[1], 0), task(0, 1, 1, &[], 0)];
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::ZERO);
        assert_eq!(
            p,
            Placement::Launch {
                job: JobId::new(0),
                stage: 1,
                task_index: 1,
                local: false
            }
        );
    }

    #[test]
    fn declines_within_threshold() {
        let mut s = sched();
        let tasks = vec![task(0, 0, 0, &[1], 0)];
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::from_secs(1));
        assert_eq!(
            p,
            Placement::Decline {
                retry_after: SimDuration::from_secs(2)
            }
        );
    }

    #[test]
    fn downgrades_after_threshold() {
        let mut s = sched();
        let tasks = vec![task(0, 0, 0, &[1], 0)];
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::from_secs(3));
        assert_eq!(
            p,
            Placement::Launch {
                job: JobId::new(0),
                stage: 0,
                task_index: 0,
                local: false
            }
        );
    }

    #[test]
    fn downgrade_cascades_across_the_set() {
        let mut s = sched();
        let tasks: Vec<RunnableTask> = (0..4).map(|i| task(0, 0, i, &[9], 0)).collect();
        // First non-local launch needed a 3s wait...
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::from_secs(3));
        assert!(matches!(
            p,
            Placement::Launch {
                task_index: 0,
                local: false,
                ..
            }
        ));
        // ...but the rest of the set launches anywhere immediately.
        let p = s.on_offer(NodeId::new(1), &tasks[1..], SimTime::from_secs(3));
        assert!(matches!(
            p,
            Placement::Launch {
                task_index: 1,
                local: false,
                ..
            }
        ));
    }

    #[test]
    fn local_launch_resets_the_level() {
        let mut s = sched();
        let tasks: Vec<RunnableTask> = vec![task(0, 0, 0, &[0], 0), task(0, 0, 1, &[9], 0)];
        // Downgrade the set.
        let p = s.on_offer(NodeId::new(5), &tasks, SimTime::from_secs(3));
        assert!(matches!(p, Placement::Launch { local: false, .. }));
        // A local launch for task 0 resets the clock...
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::from_secs(3));
        assert!(matches!(
            p,
            Placement::Launch {
                task_index: 0,
                local: true,
                ..
            }
        ));
        // ...so the remaining non-local task must wait a fresh 3 s.
        let p = s.on_offer(NodeId::new(5), &tasks[1..], SimTime::from_secs(4));
        assert_eq!(
            p,
            Placement::Decline {
                retry_after: SimDuration::from_secs(2)
            }
        );
    }

    #[test]
    fn zero_threshold_never_declines() {
        let mut s = DelayScheduler::new(SimDuration::ZERO);
        let tasks = vec![task(0, 0, 0, &[1], 10)];
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::from_secs(10));
        assert!(matches!(p, Placement::Launch { local: false, .. }));
    }

    #[test]
    fn independent_sets_have_independent_clocks() {
        let mut s = sched();
        // Set (job 0) runnable at t=0; set (job 1) at t=4.
        let tasks = vec![task(0, 0, 0, &[9], 0), task(1, 0, 0, &[9], 4)];
        // At t=3.5 job 0's set expired, job 1's did not.
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::from_millis(3_500));
        assert!(matches!(p, Placement::Launch { job, .. } if job == JobId::new(0)));
        let p = s.on_offer(NodeId::new(0), &tasks[1..], SimTime::from_millis(3_600));
        assert!(matches!(p, Placement::Decline { .. }));
    }

    #[test]
    fn retry_after_counts_down() {
        let mut s = sched();
        let tasks = vec![task(0, 0, 0, &[1], 0)];
        for (now_ms, expect_ms) in [(0u64, 3000u64), (1000, 2000), (2999, 1)] {
            let p = s.on_offer(NodeId::new(0), &tasks, SimTime::from_millis(now_ms));
            assert_eq!(
                p,
                Placement::Decline {
                    retry_after: SimDuration::from_millis(expect_ms)
                }
            );
        }
    }
}
