//! Retry budgets with exponential backoff and jitter.
//!
//! Transient task faults (a JVM that dies, a container OOM, a flaky disk
//! read) are not worth failing a job over — but retrying forever turns a
//! persistently broken task into a livelock. The [`RetryPolicy`] bounds
//! both directions: each retry waits exponentially longer (with jitter so
//! co-faulted tasks do not stampede back in lockstep), and a job that
//! exhausts its *budget* of retries fails cleanly.
//!
//! The policy is deliberately deterministic given an RNG stream: the
//! simulation draws jitter from its dedicated `"task-faults"` stream so
//! retry timing never perturbs any other seeded schedule.

use custody_simcore::{SimDuration, SimRng};

/// Bounded-retry policy: a total per-job budget and an exponential
/// backoff schedule with multiplicative jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total retries one job may consume before it fails cleanly.
    pub budget: usize,
    /// Base wait: retry *n* (1-indexed) waits `base * 2^(n-1)`, jittered.
    pub base_backoff: SimDuration,
    /// Jitter fraction in `[0, 1]`: each wait is scaled by a uniform
    /// factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

/// Exponent cap so `2^(n-1)` cannot overflow or produce absurd waits for
/// large budgets; retries past this reuse the capped wait.
const MAX_DOUBLINGS: u32 = 16;

impl RetryPolicy {
    /// Creates a policy; panics on a jitter outside `[0, 1]`.
    pub fn new(budget: usize, base_backoff: SimDuration, jitter: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&jitter),
            "retry jitter must be a fraction"
        );
        RetryPolicy {
            budget,
            base_backoff,
            jitter,
        }
    }

    /// Whether a job that has already consumed `retries_used` retries has
    /// exhausted its budget (the next fault must fail the job).
    pub fn exhausted(&self, retries_used: usize) -> bool {
        retries_used >= self.budget
    }

    /// The wait before retry number `attempt` (1-indexed: the first retry
    /// of a task passes `1`). Exponential in the attempt number, scaled by
    /// a jitter factor drawn from `rng`.
    ///
    /// The jitter draw happens even when `jitter == 0` so that toggling
    /// jitter alone never shifts later draws on the stream.
    pub fn backoff(&self, attempt: usize, rng: &mut SimRng) -> SimDuration {
        assert!(attempt >= 1, "retry attempts are 1-indexed");
        let doublings = (attempt as u32 - 1).min(MAX_DOUBLINGS);
        let scale = 1.0 - self.jitter + rng.unit() * 2.0 * self.jitter;
        let secs = self.base_backoff.as_secs_f64() * f64::from(1u32 << doublings) * scale;
        SimDuration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(jitter: f64) -> RetryPolicy {
        RetryPolicy::new(4, SimDuration::from_secs_f64(0.5), jitter)
    }

    #[test]
    fn budget_exhaustion_is_inclusive() {
        let p = policy(0.0);
        assert!(!p.exhausted(0));
        assert!(!p.exhausted(3));
        assert!(p.exhausted(4));
        assert!(p.exhausted(5));
    }

    #[test]
    fn backoff_doubles_without_jitter() {
        let p = policy(0.0);
        let mut rng = SimRng::seed_from_u64(7);
        let waits: Vec<f64> = (1..=4)
            .map(|n| p.backoff(n, &mut rng).as_secs_f64())
            .collect();
        assert_eq!(waits, vec![0.5, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn jitter_stays_within_the_band() {
        let p = policy(0.25);
        let mut rng = SimRng::seed_from_u64(42);
        for attempt in 1..=32 {
            let nominal = 0.5 * f64::from(1u32 << (attempt as u32 - 1).min(MAX_DOUBLINGS));
            let w = p.backoff(attempt, &mut rng).as_secs_f64();
            assert!(
                w >= nominal * 0.75 - 1e-9 && w <= nominal * 1.25 + 1e-9,
                "attempt {attempt}: wait {w} outside ±25 % of {nominal}"
            );
        }
    }

    #[test]
    fn exponent_is_capped() {
        let p = policy(0.0);
        let mut rng = SimRng::seed_from_u64(0);
        let capped = p.backoff(MAX_DOUBLINGS as usize + 1, &mut rng);
        let beyond = p.backoff(MAX_DOUBLINGS as usize + 50, &mut rng);
        assert_eq!(capped, beyond, "waits stop growing at the cap");
    }

    #[test]
    fn backoff_is_deterministic_per_stream() {
        let p = policy(0.2);
        let mut a = SimRng::for_stream(9, "task-faults");
        let mut b = SimRng::for_stream(9, "task-faults");
        for attempt in 1..=8 {
            assert_eq!(p.backoff(attempt, &mut a), p.backoff(attempt, &mut b));
        }
    }

    #[test]
    #[should_panic(expected = "1-indexed")]
    fn zeroth_attempt_is_rejected() {
        RetryPolicy::new(1, SimDuration::from_secs_f64(1.0), 0.0)
            .backoff(0, &mut SimRng::seed_from_u64(0));
    }
}
