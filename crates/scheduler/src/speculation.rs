//! Speculative execution — the straggler-mitigation extension.
//!
//! §IV-B: "We can further utilize existing straggler mitigation schemes
//! (e.g., \[26\], \[27\], \[10\]) to offset such performance degradation"
//! for low-priority tasks that miss locality. This module implements the
//! standard clone-based policy (Spark's `spark.speculation`): when a
//! stage is mostly finished, tasks that have run far longer than the
//! median completed-task duration get a speculative copy; the first copy
//! to finish wins.

use custody_simcore::{SimDuration, SimTime};

/// Configuration of the speculative-execution policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// Fraction of a stage's tasks that must have completed before any
    /// speculation happens (Spark default: 0.75).
    pub quantile: f64,
    /// A running task is a straggler when its elapsed time exceeds
    /// `multiplier ×` the median completed-task duration (Spark default:
    /// 1.5).
    pub multiplier: f64,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            quantile: 0.75,
            multiplier: 1.5,
        }
    }
}

/// Tracks one stage's task durations and answers "should this running
/// task be cloned?".
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationPolicy {
    config: SpeculationConfig,
    total_tasks: usize,
    completed_durations: Vec<SimDuration>,
    sorted: bool,
}

impl SpeculationPolicy {
    /// Creates a policy for a stage of `total_tasks` tasks.
    pub fn new(config: SpeculationConfig, total_tasks: usize) -> Self {
        SpeculationPolicy {
            config,
            total_tasks,
            completed_durations: Vec::new(),
            sorted: true,
        }
    }

    /// Records a completed task's duration.
    pub fn record_completion(&mut self, duration: SimDuration) {
        self.completed_durations.push(duration);
        self.sorted = false;
    }

    /// Number of recorded completions.
    pub fn completed(&self) -> usize {
        self.completed_durations.len()
    }

    /// Median duration of completed tasks, if any completed.
    ///
    /// Convention: the *lower middle* on even counts (pinned by test) —
    /// a duration threshold rounds toward speculating slightly earlier.
    /// This deliberately differs from the health detector's
    /// midpoint-of-the-two-middles median (`sim`'s `driver/health.rs`),
    /// whose ratios feed a cost model and must not bias pessimistic on
    /// even peer counts.
    pub fn median_duration(&mut self) -> Option<SimDuration> {
        if self.completed_durations.is_empty() {
            return None;
        }
        if !self.sorted {
            self.completed_durations.sort_unstable();
            self.sorted = true;
        }
        Some(self.completed_durations[(self.completed_durations.len() - 1) / 2])
    }

    /// Whether a task that started at `started_at` should get a
    /// speculative clone at time `now`.
    pub fn should_speculate(&mut self, started_at: SimTime, now: SimTime) -> bool {
        if self.total_tasks == 0 {
            return false;
        }
        let done_fraction = self.completed_durations.len() as f64 / self.total_tasks as f64;
        if done_fraction < self.config.quantile {
            return false;
        }
        let Some(median) = self.median_duration() else {
            return false;
        };
        let threshold = SimDuration::from_secs_f64(median.as_secs_f64() * self.config.multiplier);
        now.saturating_since(started_at) > threshold
    }
}

/// Picks which straggler to clone first: the candidate whose current
/// node carries the highest peer-relative placement penalty — clone off
/// the slowest node first, because that is where a restart buys the most
/// — with ties (including the all-zero penalties of a run without health
/// detection) resolved to the *earliest* candidate, exactly the order a
/// penalty-blind scan would pick. Returns the index into `candidates`.
pub fn pick_clone_source(penalties: &[u32]) -> Option<usize> {
    let mut best: Option<(u32, usize)> = None;
    for (i, &p) in penalties.iter().enumerate() {
        if best.is_none_or(|(bp, _)| p > bp) {
            best = Some((p, i));
        }
    }
    best.map(|(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(total: usize) -> SpeculationPolicy {
        SpeculationPolicy::new(SpeculationConfig::default(), total)
    }

    #[test]
    fn clone_source_prefers_highest_penalty() {
        assert_eq!(pick_clone_source(&[0, 3, 6, 3]), Some(2));
    }

    #[test]
    fn clone_source_ties_resolve_to_earliest() {
        // All-zero penalties (health detection off) degenerate to the
        // penalty-blind first-in-order pick.
        assert_eq!(pick_clone_source(&[0, 0, 0]), Some(0));
        assert_eq!(pick_clone_source(&[2, 5, 5]), Some(1));
        assert_eq!(pick_clone_source(&[]), None);
    }

    #[test]
    fn no_speculation_before_quantile() {
        let mut p = policy(4);
        p.record_completion(SimDuration::from_secs(1));
        p.record_completion(SimDuration::from_secs(1));
        // 2/4 = 50% < 75%.
        assert!(!p.should_speculate(SimTime::ZERO, SimTime::from_secs(100)));
    }

    #[test]
    fn speculates_on_slow_task_after_quantile() {
        let mut p = policy(4);
        for _ in 0..3 {
            p.record_completion(SimDuration::from_secs(2));
        }
        // Median 2s, multiplier 1.5 → threshold 3s.
        assert!(!p.should_speculate(SimTime::ZERO, SimTime::from_secs(3)));
        assert!(p.should_speculate(SimTime::ZERO, SimTime::from_millis(3_001)));
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut p = policy(5);
        p.record_completion(SimDuration::from_secs(9));
        p.record_completion(SimDuration::from_secs(1));
        p.record_completion(SimDuration::from_secs(5));
        assert_eq!(p.median_duration(), Some(SimDuration::from_secs(5)));
        assert_eq!(p.completed(), 3);
    }

    #[test]
    fn empty_stage_never_speculates() {
        let mut p = policy(0);
        assert!(!p.should_speculate(SimTime::ZERO, SimTime::from_secs(1000)));
        assert_eq!(p.median_duration(), None);
    }

    #[test]
    fn median_of_even_count_takes_lower_middle() {
        let mut p = policy(8);
        for secs in [4, 1, 3, 2] {
            p.record_completion(SimDuration::from_secs(secs));
        }
        // Sorted [1, 2, 3, 4], index (4-1)/2 = 1 → the lower middle.
        assert_eq!(p.median_duration(), Some(SimDuration::from_secs(2)));
    }

    #[test]
    fn median_of_odd_count_takes_exact_middle() {
        let mut p = policy(8);
        for secs in [5, 1, 3, 2, 4] {
            p.record_completion(SimDuration::from_secs(secs));
        }
        assert_eq!(p.median_duration(), Some(SimDuration::from_secs(3)));
    }

    #[test]
    fn single_completion_is_its_own_median() {
        let mut p = policy(8);
        p.record_completion(SimDuration::from_secs(7));
        assert_eq!(p.median_duration(), Some(SimDuration::from_secs(7)));
    }

    #[test]
    fn zero_duration_tasks_clone_any_running_task() {
        // All completed tasks took zero time (cache-hot trivial work):
        // median 0 ⇒ threshold 0 ⇒ anything that has run at all is a
        // straggler; anything launched *right now* is not.
        let mut p = policy(4);
        for _ in 0..3 {
            p.record_completion(SimDuration::ZERO);
        }
        assert_eq!(p.median_duration(), Some(SimDuration::ZERO));
        assert!(!p.should_speculate(SimTime::from_secs(5), SimTime::from_secs(5)));
        assert!(p.should_speculate(SimTime::ZERO, SimTime::from_millis(1)));
    }

    #[test]
    fn zero_duration_mixed_with_real_durations_keeps_ordering() {
        let mut p = policy(4);
        p.record_completion(SimDuration::ZERO);
        p.record_completion(SimDuration::from_secs(2));
        p.record_completion(SimDuration::from_secs(4));
        // Sorted [0, 2, 4] → median 2s, threshold 3s.
        assert_eq!(p.median_duration(), Some(SimDuration::from_secs(2)));
        assert!(!p.should_speculate(SimTime::ZERO, SimTime::from_secs(3)));
        assert!(p.should_speculate(SimTime::ZERO, SimTime::from_millis(3_001)));
    }

    #[test]
    fn custom_config_thresholds() {
        let mut p = SpeculationPolicy::new(
            SpeculationConfig {
                quantile: 0.5,
                multiplier: 2.0,
            },
            2,
        );
        p.record_completion(SimDuration::from_secs(1));
        // 1/2 ≥ 0.5; threshold = 2s.
        assert!(!p.should_speculate(SimTime::ZERO, SimTime::from_secs(2)));
        assert!(p.should_speculate(SimTime::ZERO, SimTime::from_millis(2_001)));
    }
}
