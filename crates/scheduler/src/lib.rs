#![warn(missing_docs)]

//! # custody-scheduler
//!
//! In-application task schedulers.
//!
//! Custody allocates *executors to applications*; each application's own
//! task scheduler then places *tasks on executors*. "In our experiments,
//! all the applications use the standard delay scheduling of Spark to
//! accept resource offers and schedule tasks" (§V) — so this crate
//! implements delay scheduling \[22\] plus the degenerate policies used in
//! ablations:
//!
//! * [`DelayScheduler`] — a task declines non-local slots until it has
//!   waited past a threshold, then runs anywhere.
//! * [`SchedulerKind::LocalityFirst`] — delay scheduling with a zero
//!   threshold: prefer local slots, never wait.
//! * [`FifoScheduler`] — pure FIFO, locality-oblivious (the lower bound).
//!
//! The interface is offer-based like Spark/Mesos: the runtime offers one
//! free executor (identified by its host node) to the scheduler, which
//! either launches a runnable task or declines, optionally asking to be
//! re-offered after a wait.
//!
//! [`speculation`] implements the straggler-mitigation extension the paper
//! points to (§IV-B: "we can further utilize existing straggler mitigation
//! schemes").

pub mod delay;
pub mod fifo;
pub mod retry;
pub mod speculation;

pub use delay::DelayScheduler;
pub use fifo::FifoScheduler;
pub use retry::RetryPolicy;

use custody_dfs::NodeId;
use custody_simcore::{SimDuration, SimTime};
use custody_workload::JobId;

/// A task the application could launch right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnableTask {
    /// Owning job.
    pub job: JobId,
    /// Stage index within the job (0 = input stage).
    pub stage: usize,
    /// Task index within the stage.
    pub task_index: usize,
    /// Nodes where this task would be data-local. Empty for downstream
    /// tasks, which have no meaningful locality preference.
    /// Shared handle into the runtime's per-task state — cloning a
    /// `RunnableTask` never deep-copies the node list.
    pub preferred_nodes: std::sync::Arc<[NodeId]>,
    /// When the task became runnable (starts the delay-scheduling clock).
    pub runnable_since: SimTime,
}

impl RunnableTask {
    /// True for input tasks with a data-locality preference.
    pub fn has_preference(&self) -> bool {
        !self.preferred_nodes.is_empty()
    }

    /// Whether running on `node` would be data-local.
    pub fn local_on(&self, node: NodeId) -> bool {
        self.preferred_nodes.contains(&node)
    }
}

/// The scheduler's verdict on one executor offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Launch this task on the offered executor.
    Launch {
        /// Owning job.
        job: JobId,
        /// Stage index.
        stage: usize,
        /// Task index within the stage.
        task_index: usize,
        /// Whether the placement is data-local (always `false` for tasks
        /// without preferences).
        local: bool,
    },
    /// Decline the offer; re-offer no earlier than `retry_after` from now
    /// (a task is still hoping for a local slot).
    Decline {
        /// Minimum wait before the next offer can succeed non-locally.
        retry_after: SimDuration,
    },
    /// Nothing runnable.
    NoWork,
}

/// An application-level task scheduler.
pub trait TaskScheduler {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Offers a free executor on `node` at time `now`; `runnable` lists
    /// the tasks that could launch (FIFO order of becoming runnable).
    fn on_offer(&mut self, node: NodeId, runnable: &[RunnableTask], now: SimTime) -> Placement;

    /// Deep-copies the scheduler, internal state included. Master
    /// checkpointing snapshots each application's scheduler so replayed
    /// offers reproduce the exact same placements.
    fn clone_box(&self) -> Box<dyn TaskScheduler>;
}

impl Clone for Box<dyn TaskScheduler> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Which task scheduler an application runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Delay scheduling with the given wait threshold.
    Delay(SimDuration),
    /// Prefer local slots but never wait (delay threshold zero).
    LocalityFirst,
    /// Locality-oblivious FIFO.
    Fifo,
}

impl SchedulerKind {
    /// The paper's configuration: delay scheduling with Spark's default
    /// 3-second locality wait.
    pub fn spark_default() -> Self {
        SchedulerKind::Delay(SimDuration::from_secs(3))
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Delay(_) => "delay",
            SchedulerKind::LocalityFirst => "locality-first",
            SchedulerKind::Fifo => "fifo",
        }
    }

    /// Instantiates the scheduler.
    pub fn build(self) -> Box<dyn TaskScheduler> {
        match self {
            SchedulerKind::Delay(wait) => Box::new(DelayScheduler::new(wait)),
            SchedulerKind::LocalityFirst => Box::new(DelayScheduler::new(SimDuration::ZERO)),
            SchedulerKind::Fifo => Box::new(FifoScheduler::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runnable_task_preference_queries() {
        let t = RunnableTask {
            job: JobId::new(0),
            stage: 0,
            task_index: 0,
            preferred_nodes: [NodeId::new(2), NodeId::new(5)].into(),
            runnable_since: SimTime::ZERO,
        };
        assert!(t.has_preference());
        assert!(t.local_on(NodeId::new(5)));
        assert!(!t.local_on(NodeId::new(3)));
        let d = RunnableTask {
            preferred_nodes: [].into(),
            ..t
        };
        assert!(!d.has_preference());
        assert!(!d.local_on(NodeId::new(2)));
    }

    #[test]
    fn kinds_build() {
        assert_eq!(SchedulerKind::spark_default().name(), "delay");
        assert_eq!(SchedulerKind::Fifo.build().name(), "fifo");
        assert_eq!(SchedulerKind::LocalityFirst.build().name(), "delay");
    }
}
