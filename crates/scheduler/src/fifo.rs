//! Locality-oblivious FIFO scheduling — the ablation lower bound.
//!
//! Launches the earliest-runnable task on whatever executor is offered,
//! never waiting for locality. Shows how much of Custody's gain survives
//! when the *task* scheduler squanders the locality the *executor*
//! allocation bought (answer: a lot, because Custody put the executors on
//! the right nodes — FIFO lands tasks locally by construction more often).

use custody_dfs::NodeId;
use custody_simcore::SimTime;

use crate::{Placement, RunnableTask, TaskScheduler};

/// Pure FIFO task scheduling.
#[derive(Debug, Clone, Default)]
pub struct FifoScheduler {
    _private: (),
}

impl FifoScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskScheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn on_offer(&mut self, node: NodeId, runnable: &[RunnableTask], _now: SimTime) -> Placement {
        match runnable
            .iter()
            .min_by_key(|t| (t.runnable_since, t.job, t.stage, t.task_index))
        {
            None => Placement::NoWork,
            Some(task) => Placement::Launch {
                job: task.job,
                stage: task.stage,
                task_index: task.task_index,
                local: task.local_on(node),
            },
        }
    }

    fn clone_box(&self) -> Box<dyn TaskScheduler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use custody_workload::JobId;

    fn task(job: usize, idx: usize, nodes: &[usize], since: u64) -> RunnableTask {
        RunnableTask {
            job: JobId::new(job),
            stage: 0,
            task_index: idx,
            preferred_nodes: nodes.iter().map(|&n| NodeId::new(n)).collect(),
            runnable_since: SimTime::from_secs(since),
        }
    }

    #[test]
    fn launches_earliest_regardless_of_locality() {
        let mut s = FifoScheduler::new();
        // The earlier task is non-local; FIFO takes it anyway.
        let tasks = vec![task(0, 0, &[9], 0), task(0, 1, &[0], 1)];
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::from_secs(2));
        assert_eq!(
            p,
            Placement::Launch {
                job: JobId::new(0),
                stage: 0,
                task_index: 0,
                local: false
            }
        );
    }

    #[test]
    fn reports_accidental_locality() {
        let mut s = FifoScheduler::new();
        let tasks = vec![task(0, 0, &[0], 0)];
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::ZERO);
        assert!(matches!(p, Placement::Launch { local: true, .. }));
    }

    #[test]
    fn no_work_when_empty() {
        let mut s = FifoScheduler::new();
        assert_eq!(
            s.on_offer(NodeId::new(0), &[], SimTime::ZERO),
            Placement::NoWork
        );
    }

    #[test]
    fn never_declines() {
        let mut s = FifoScheduler::new();
        let tasks = vec![task(0, 0, &[5], 100)];
        let p = s.on_offer(NodeId::new(0), &tasks, SimTime::from_secs(100));
        assert!(matches!(p, Placement::Launch { .. }));
    }
}
