//! Pairwise connectivity: who can currently deliver a message to whom.
//!
//! Crash-stop faults (chaos) and gray failures (fail-slow) both assume a
//! fully connected cluster: a machine is either dead or reachable. Real
//! clusters also see *partitions* — machines that are alive yet cut off
//! from the master, sometimes in one direction only. [`Connectivity`]
//! models the cluster's current reachability relation as a two-sided
//! split: a **minority** group is cut away from the majority side (which
//! always includes the master), and a [`CutMode`] says which direction(s)
//! of crossing traffic the cut drops.
//!
//! The model is deliberately passive state, like
//! [`LeaseTable`](crate::LeaseTable): the *driver* decides when splits
//! open, flap, and heal (from its seeded `"partition"` RNG stream), and
//! every query here is a pure function of the stored state — so the model
//! is deterministic, cloneable for master checkpoints, and trivially
//! auditable.

use custody_dfs::NodeId;

/// Which direction(s) of traffic crossing the cut are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutMode {
    /// Clean split: nothing crosses in either direction.
    Both,
    /// Asymmetric: messages *from* the minority are dropped (heartbeats
    /// and Finish reports vanish) but messages *to* it still arrive —
    /// the minority keeps receiving and running work it cannot report.
    MinorityOutbound,
    /// Asymmetric: messages *to* the minority are dropped (dispatch is
    /// lost) but messages *from* it still arrive — the master keeps
    /// hearing healthy heartbeats from nodes it cannot actually reach.
    MinorityInbound,
}

/// The cluster's current pairwise-reachability relation.
///
/// At most one split is active at a time; flapping temporarily suspends
/// its cuts without forgetting the minority membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connectivity {
    /// `true` for nodes on the cut-away side of the active split.
    minority: Vec<bool>,
    /// Direction(s) the active split drops; meaningless when healed.
    mode: CutMode,
    /// Whether a split is currently configured (healed ⇒ `false`).
    split_active: bool,
    /// Flap state: a suspended split keeps its membership but drops
    /// nothing (the links briefly came back).
    suspended: bool,
}

impl Connectivity {
    /// A fully connected cluster of `num_nodes` machines.
    pub fn fully_connected(num_nodes: usize) -> Self {
        Connectivity {
            minority: vec![false; num_nodes],
            mode: CutMode::Both,
            split_active: false,
            suspended: false,
        }
    }

    /// Opens a split cutting `minority` away from the majority (and the
    /// master) in the direction(s) given by `mode`. Replaces any
    /// previous split.
    pub fn split(&mut self, minority: &[NodeId], mode: CutMode) {
        self.minority.iter_mut().for_each(|m| *m = false);
        for &n in minority {
            self.minority[n.index()] = true;
        }
        self.mode = mode;
        self.split_active = true;
        self.suspended = false;
    }

    /// Heals the split: full connectivity, membership forgotten.
    pub fn heal(&mut self) {
        self.minority.iter_mut().for_each(|m| *m = false);
        self.split_active = false;
        self.suspended = false;
    }

    /// Flap: temporarily suspends (`true`) or re-applies (`false`) the
    /// active split's cuts without changing membership. No-op when no
    /// split is active.
    pub fn set_suspended(&mut self, suspended: bool) {
        if self.split_active {
            self.suspended = suspended;
        }
    }

    /// Whether a split is configured (its cuts may be flap-suspended).
    pub fn split_active(&self) -> bool {
        self.split_active
    }

    /// Whether any link is currently dropping traffic.
    pub fn cutting(&self) -> bool {
        self.split_active && !self.suspended
    }

    /// The active split's direction mode.
    pub fn mode(&self) -> CutMode {
        self.mode
    }

    /// Whether `node` is on the cut-away side of the active split.
    /// Always `false` when healed.
    pub fn in_minority(&self, node: NodeId) -> bool {
        self.split_active && self.minority[node.index()]
    }

    /// Nodes currently on the minority side, in index order.
    pub fn minority_nodes(&self) -> Vec<NodeId> {
        if !self.split_active {
            return Vec::new();
        }
        self.minority
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Whether a message sent by `node` reaches the master (which lives
    /// on the majority side).
    pub fn node_reaches_master(&self, node: NodeId) -> bool {
        if !self.cutting() || !self.minority[node.index()] {
            return true;
        }
        self.mode == CutMode::MinorityInbound
    }

    /// Whether a message sent by the master reaches `node`.
    pub fn master_reaches_node(&self, node: NodeId) -> bool {
        if !self.cutting() || !self.minority[node.index()] {
            return true;
        }
        self.mode == CutMode::MinorityOutbound
    }

    /// Whether a message sent by `from` reaches `to`: same-side traffic
    /// always flows; crossing traffic flows only in the direction(s) the
    /// mode leaves open.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if !self.cutting() {
            return true;
        }
        let (a, b) = (self.minority[from.index()], self.minority[to.index()]);
        if a == b {
            return true; // same side
        }
        match self.mode {
            CutMode::Both => false,
            // Only minority→out traffic is dropped.
            CutMode::MinorityOutbound => !a,
            // Only →minority traffic is dropped.
            CutMode::MinorityInbound => !b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn fully_connected_reaches_everything() {
        let c = Connectivity::fully_connected(4);
        assert!(!c.split_active());
        assert!(!c.cutting());
        for i in 0..4 {
            assert!(c.node_reaches_master(n(i)));
            assert!(c.master_reaches_node(n(i)));
            for j in 0..4 {
                assert!(c.reachable(n(i), n(j)));
            }
        }
        assert!(c.minority_nodes().is_empty());
    }

    #[test]
    fn clean_split_cuts_both_directions() {
        let mut c = Connectivity::fully_connected(4);
        c.split(&[n(1), n(3)], CutMode::Both);
        assert!(c.cutting());
        assert_eq!(c.minority_nodes(), vec![n(1), n(3)]);
        assert!(!c.node_reaches_master(n(1)));
        assert!(!c.master_reaches_node(n(3)));
        assert!(c.node_reaches_master(n(0)));
        // Same-side traffic still flows on both sides.
        assert!(c.reachable(n(1), n(3)));
        assert!(c.reachable(n(0), n(2)));
        assert!(!c.reachable(n(0), n(1)));
        assert!(!c.reachable(n(1), n(0)));
    }

    #[test]
    fn outbound_cut_is_one_way() {
        let mut c = Connectivity::fully_connected(3);
        c.split(&[n(2)], CutMode::MinorityOutbound);
        // The minority cannot report up, but still hears the master.
        assert!(!c.node_reaches_master(n(2)));
        assert!(c.master_reaches_node(n(2)));
        assert!(!c.reachable(n(2), n(0)));
        assert!(c.reachable(n(0), n(2)));
    }

    #[test]
    fn inbound_cut_is_the_mirror() {
        let mut c = Connectivity::fully_connected(3);
        c.split(&[n(2)], CutMode::MinorityInbound);
        assert!(c.node_reaches_master(n(2)));
        assert!(!c.master_reaches_node(n(2)));
        assert!(c.reachable(n(2), n(0)));
        assert!(!c.reachable(n(0), n(2)));
    }

    #[test]
    fn flap_suspends_without_forgetting() {
        let mut c = Connectivity::fully_connected(3);
        c.split(&[n(1)], CutMode::Both);
        c.set_suspended(true);
        assert!(c.split_active() && !c.cutting());
        assert!(c.node_reaches_master(n(1)));
        assert!(c.in_minority(n(1)), "membership survives the flap");
        c.set_suspended(false);
        assert!(!c.node_reaches_master(n(1)));
    }

    #[test]
    fn heal_restores_everything() {
        let mut c = Connectivity::fully_connected(3);
        c.split(&[n(0)], CutMode::Both);
        c.heal();
        assert_eq!(c, Connectivity::fully_connected(3));
        // Suspending a healed model is a no-op.
        c.set_suspended(true);
        assert!(!c.split_active());
    }

    #[test]
    fn new_split_replaces_old() {
        let mut c = Connectivity::fully_connected(4);
        c.split(&[n(0)], CutMode::Both);
        c.split(&[n(2)], CutMode::MinorityOutbound);
        assert!(!c.in_minority(n(0)));
        assert!(c.in_minority(n(2)));
        assert_eq!(c.mode(), CutMode::MinorityOutbound);
    }
}
