//! Worker-node hardware description.

use custody_dfs::NodeId;

use crate::executor::ExecutorId;

/// A machine in the cluster, as the cluster manager sees it.
#[derive(Debug, Clone)]
pub struct WorkerNode {
    /// The machine's id (shared with its co-located DataNode).
    pub id: NodeId,
    /// CPU cores. The paper's nodes have 8; with two executors per node,
    /// each executor effectively owns half the machine.
    pub cores: u32,
    /// Main memory in bytes (16 GB on the paper's testbed).
    pub memory_bytes: u64,
    /// The executor processes launched on this node, in id order.
    pub executors: Vec<ExecutorId>,
}

impl WorkerNode {
    /// Creates a node with no executors yet.
    pub fn new(id: NodeId, cores: u32, memory_bytes: u64) -> Self {
        WorkerNode {
            id,
            cores,
            memory_bytes,
            executors: Vec::new(),
        }
    }

    /// Number of executors on this node.
    pub fn executor_count(&self) -> usize {
        self.executors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_has_no_executors() {
        let n = WorkerNode::new(NodeId::new(0), 8, 16_000_000_000);
        assert_eq!(n.executor_count(), 0);
        assert_eq!(n.cores, 8);
    }
}
