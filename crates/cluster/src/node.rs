//! Worker-node hardware description and the health-belief state machine.

use custody_dfs::NodeId;

use crate::executor::ExecutorId;

/// The control plane's *belief* about a node's gray-failure health.
///
/// This is belief, not physical truth: it is derived solely from
/// peer-relative service-time observations, never from the simulator's
/// knowledge of which nodes are actually sick. The legal transitions form
/// a graceful-degradation loop:
///
/// ```text
/// Healthy ⇄ Suspect → Quarantined → Probation → Healthy
///                          ↑            │
///                          └────────────┘  (probes still slow)
/// ```
///
/// * **Suspect** nodes are demoted in the allocator's discretionary pick
///   order but still schedulable (the evidence is weak).
/// * **Quarantined** nodes receive no new tasks at all — not from the
///   allocator's idle set and not as speculation-clone hosts. Running
///   tasks are allowed to drain (graceful degradation, not fencing).
/// * **Probation** nodes are re-admitted for a bounded number of probe
///   tasks whose service times decide between re-admission and
///   re-quarantine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// No evidence of degradation.
    #[default]
    Healthy,
    /// Service times elevated past the suspect threshold; demoted but
    /// schedulable.
    Suspect,
    /// Service times elevated past the quarantine threshold; excluded
    /// from all new placement.
    Quarantined,
    /// Serving probe tasks to earn re-admission.
    Probation,
}

impl HealthState {
    /// Whether new tasks may be launched on a node in this state.
    /// Only quarantine excludes a node outright.
    pub fn is_schedulable(self) -> bool {
        self != HealthState::Quarantined
    }

    /// Whether the allocator should prefer other nodes when it has free
    /// choice (filler grants): weak-evidence states are demoted, healthy
    /// nodes are not, quarantined nodes never reach the pick order.
    pub fn is_demoted(self) -> bool {
        matches!(self, HealthState::Suspect | HealthState::Probation)
    }

    /// Whether the transition `self → next` is legal in the
    /// graceful-degradation state machine.
    pub fn can_transition_to(self, next: HealthState) -> bool {
        use HealthState::*;
        matches!(
            (self, next),
            (Healthy, Suspect)
                | (Suspect, Healthy)
                | (Suspect, Quarantined)
                | (Quarantined, Probation)
                | (Probation, Healthy)
                | (Probation, Quarantined)
        )
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Quarantined => "quarantined",
            HealthState::Probation => "probation",
        }
    }
}

/// A machine in the cluster, as the cluster manager sees it.
#[derive(Debug, Clone)]
pub struct WorkerNode {
    /// The machine's id (shared with its co-located DataNode).
    pub id: NodeId,
    /// CPU cores. The paper's nodes have 8; with two executors per node,
    /// each executor effectively owns half the machine.
    pub cores: u32,
    /// Main memory in bytes (16 GB on the paper's testbed).
    pub memory_bytes: u64,
    /// The executor processes launched on this node, in id order.
    pub executors: Vec<ExecutorId>,
}

impl WorkerNode {
    /// Creates a node with no executors yet.
    pub fn new(id: NodeId, cores: u32, memory_bytes: u64) -> Self {
        WorkerNode {
            id,
            cores,
            memory_bytes,
            executors: Vec::new(),
        }
    }

    /// Number of executors on this node.
    pub fn executor_count(&self) -> usize {
        self.executors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_has_no_executors() {
        let n = WorkerNode::new(NodeId::new(0), 8, 16_000_000_000);
        assert_eq!(n.executor_count(), 0);
        assert_eq!(n.cores, 8);
    }

    #[test]
    fn health_state_schedulability_and_demotion() {
        use HealthState::*;
        assert!(Healthy.is_schedulable() && !Healthy.is_demoted());
        assert!(Suspect.is_schedulable() && Suspect.is_demoted());
        assert!(!Quarantined.is_schedulable());
        assert!(Probation.is_schedulable() && Probation.is_demoted());
        assert_eq!(HealthState::default(), Healthy);
    }

    #[test]
    fn health_transitions_follow_the_degradation_loop() {
        use HealthState::*;
        // The loop itself.
        assert!(Healthy.can_transition_to(Suspect));
        assert!(Suspect.can_transition_to(Quarantined));
        assert!(Quarantined.can_transition_to(Probation));
        assert!(Probation.can_transition_to(Healthy));
        assert!(Probation.can_transition_to(Quarantined));
        // Recovery from weak evidence.
        assert!(Suspect.can_transition_to(Healthy));
        // Shortcuts that must not exist.
        assert!(!Healthy.can_transition_to(Quarantined));
        assert!(!Quarantined.can_transition_to(Healthy));
        assert!(!Healthy.can_transition_to(Probation));
        assert!(!Quarantined.can_transition_to(Suspect));
        for s in [Healthy, Suspect, Quarantined, Probation] {
            assert!(!s.can_transition_to(s), "{} self-loop", s.name());
        }
    }
}
