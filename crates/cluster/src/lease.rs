//! Time-bounded executor leases.
//!
//! With an oracle-free control plane the master cannot know an executor is
//! alive — it can only observe heartbeats. A *lease* bounds how long the
//! master trusts a grant without hearing from the executor's node: every
//! allocation grants the executor under a lease, every heartbeat from the
//! host node renews all of that node's leases, and a lease that reaches
//! its expiry without renewal is revoked (the executor is believed dead
//! and its work is fenced by an epoch bump). This mirrors the
//! heartbeat-driven liveness contracts of YARN's ResourceManager and
//! GFS/HDFS-style chunk leases.
//!
//! The table is deliberately passive: it stores expiries and answers
//! queries; the *driver* decides when to arm timers and what revocation
//! means. That keeps the data structure deterministic and trivially
//! snapshot-able for master checkpoints.

use std::collections::BTreeMap;

use custody_simcore::SimTime;

use crate::executor::ExecutorId;

/// Expiry-tracked leases over granted executors.
///
/// Keyed by executor id in a `BTreeMap` so iteration order — and therefore
/// every revocation sweep — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeaseTable {
    expiry: BTreeMap<ExecutorId, SimTime>,
}

impl LeaseTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants a lease on `executor` running until `expires_at`. Granting
    /// an already-leased executor is a bug: the previous lease must be
    /// dropped (release / revocation) first.
    pub fn grant(&mut self, executor: ExecutorId, expires_at: SimTime) {
        let prev = self.expiry.insert(executor, expires_at);
        assert!(prev.is_none(), "{executor} already holds a lease");
    }

    /// Extends `executor`'s lease to at least `expires_at` (a late
    /// heartbeat never shortens a lease). No-op when the executor holds no
    /// lease — e.g. a heartbeat from a node whose executors were just
    /// revoked.
    pub fn renew(&mut self, executor: ExecutorId, expires_at: SimTime) {
        if let Some(e) = self.expiry.get_mut(&executor) {
            *e = (*e).max(expires_at);
        }
    }

    /// Drops `executor`'s lease (released back to the pool, or revoked).
    /// Returns whether a lease existed.
    pub fn drop_lease(&mut self, executor: ExecutorId) -> bool {
        self.expiry.remove(&executor).is_some()
    }

    /// Whether `executor` currently holds a lease.
    pub fn holds(&self, executor: ExecutorId) -> bool {
        self.expiry.contains_key(&executor)
    }

    /// Executors whose lease expiry is `<= now`, in executor-id order.
    pub fn expired(&self, now: SimTime) -> Vec<ExecutorId> {
        self.expiry
            .iter()
            .filter(|&(_, &t)| t <= now)
            .map(|(&e, _)| e)
            .collect()
    }

    /// Removes and returns every lease with expiry `<= now`, in
    /// executor-id order — the revocation sweep as one atomic step, so a
    /// caller (lease expiry, partition fencing) can never observe a
    /// half-dropped table.
    pub fn take_expired(&mut self, now: SimTime) -> Vec<ExecutorId> {
        let expired = self.expired(now);
        for &e in &expired {
            self.expiry.remove(&e);
        }
        expired
    }

    /// The earliest expiry among live leases; `None` when no leases exist.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.expiry.values().copied().min()
    }

    /// Number of live leases.
    pub fn len(&self) -> usize {
        self.expiry.len()
    }

    /// True when no leases are held.
    pub fn is_empty(&self) -> bool {
        self.expiry.is_empty()
    }

    /// Iterates over `(executor, expiry)` pairs in executor-id order.
    pub fn iter(&self) -> impl Iterator<Item = (ExecutorId, SimTime)> + '_ {
        self.expiry.iter().map(|(&e, &t)| (e, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn grant_renew_expire() {
        let mut l = LeaseTable::new();
        l.grant(ExecutorId::new(0), t(5));
        l.grant(ExecutorId::new(1), t(7));
        assert_eq!(l.len(), 2);
        assert!(l.holds(ExecutorId::new(0)));
        assert_eq!(l.expired(t(5)), vec![ExecutorId::new(0)]);
        l.renew(ExecutorId::new(0), t(9));
        assert!(l.expired(t(5)).is_empty());
        assert_eq!(l.next_expiry(), Some(t(7)));
    }

    #[test]
    fn renew_never_shortens() {
        let mut l = LeaseTable::new();
        l.grant(ExecutorId::new(0), t(10));
        l.renew(ExecutorId::new(0), t(4));
        assert!(l.expired(t(9)).is_empty());
    }

    #[test]
    fn renew_without_lease_is_noop() {
        let mut l = LeaseTable::new();
        l.renew(ExecutorId::new(3), t(4));
        assert!(l.is_empty());
        assert!(!l.holds(ExecutorId::new(3)));
    }

    #[test]
    fn take_expired_drops_and_returns_sorted() {
        let mut l = LeaseTable::new();
        l.grant(ExecutorId::new(4), t(2));
        l.grant(ExecutorId::new(1), t(1));
        l.grant(ExecutorId::new(7), t(9));
        assert_eq!(
            l.take_expired(t(3)),
            vec![ExecutorId::new(1), ExecutorId::new(4)]
        );
        assert_eq!(l.len(), 1);
        assert!(l.holds(ExecutorId::new(7)));
        assert!(l.take_expired(t(3)).is_empty());
    }

    #[test]
    fn drop_reports_existence() {
        let mut l = LeaseTable::new();
        l.grant(ExecutorId::new(2), t(3));
        assert!(l.drop_lease(ExecutorId::new(2)));
        assert!(!l.drop_lease(ExecutorId::new(2)));
        assert_eq!(l.next_expiry(), None);
    }

    #[test]
    #[should_panic(expected = "already holds a lease")]
    fn double_grant_panics() {
        let mut l = LeaseTable::new();
        l.grant(ExecutorId::new(0), t(1));
        l.grant(ExecutorId::new(0), t(2));
    }

    #[test]
    fn expired_is_sorted_by_id() {
        let mut l = LeaseTable::new();
        l.grant(ExecutorId::new(5), t(1));
        l.grant(ExecutorId::new(1), t(1));
        l.grant(ExecutorId::new(9), t(8));
        assert_eq!(
            l.expired(t(2)),
            vec![ExecutorId::new(1), ExecutorId::new(5)]
        );
    }
}
