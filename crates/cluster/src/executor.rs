//! Executor processes.
//!
//! "A worker node can launch multiple executors concurrently based on its
//! computation resources. Each executor has identical computation capacity,
//! and can run one task at a time" (§III-A). The paper defines an executor
//! by the blocks it can reach locally — `E_u = {D_x : E_u stores or caches
//! D_x}` — which in this model means *the blocks stored on the executor's
//! node*; the NameNode answers that query, so the executor itself only
//! carries its identity and placement.

use custody_dfs::NodeId;
use custody_simcore::define_id;

define_id!(
    /// An executor process.
    pub struct ExecutorId, "executor"
);

/// An executor process pinned to a worker node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    /// Unique id.
    pub id: ExecutorId,
    /// The worker node hosting this executor. Determines which blocks the
    /// executor can read locally.
    pub node: NodeId,
    /// Concurrent task slots. The paper's analysis fixes this to 1
    /// ("can run one task at a time"); kept as a field so sensitivity
    /// studies can vary it.
    pub slots: u32,
}

impl Executor {
    /// Creates a single-slot executor (the paper's model).
    pub fn new(id: ExecutorId, node: NodeId) -> Self {
        Executor { id, node, slots: 1 }
    }

    /// Creates an executor with a custom slot count.
    pub fn with_slots(id: ExecutorId, node: NodeId, slots: u32) -> Self {
        assert!(slots > 0, "executor must have at least one slot");
        Executor { id, node, slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_slot() {
        let e = Executor::new(ExecutorId::new(0), NodeId::new(3));
        assert_eq!(e.slots, 1);
        assert_eq!(e.node, NodeId::new(3));
    }

    #[test]
    fn custom_slots() {
        let e = Executor::with_slots(ExecutorId::new(1), NodeId::new(0), 4);
        assert_eq!(e.slots, 4);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = Executor::with_slots(ExecutorId::new(1), NodeId::new(0), 0);
    }
}
