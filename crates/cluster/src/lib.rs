#![warn(missing_docs)]

//! # custody-cluster
//!
//! The physical-cluster model: worker nodes, executor processes, and the
//! network.
//!
//! The paper's cluster model (§II, §III-A, §VI-A1): each worker node can
//! launch multiple executor processes; each executor has identical
//! computation capacity and "can run one task at a time"; the evaluation
//! launches **two executors per node** on machines with 8 cores, 16 GB of
//! memory, 384 GB SSDs, 40 Gbps downlink / 2 Gbps uplink and roughly
//! 2 Gbps of guaranteed bisection bandwidth per node.
//!
//! * [`ClusterSpec`] — declarative description of a cluster (node count,
//!   executors per node, hardware, network); presets mirror the paper's
//!   25/50/100-node Linode deployments.
//! * [`ClusterState`] — the instantiated node/executor inventory.
//! * [`NetworkModel`] — how long reading a block takes locally vs. over the
//!   network; the sole mechanism by which (lack of) data locality costs
//!   time.

pub mod connectivity;
pub mod executor;
pub mod lease;
pub mod network;
pub mod node;
pub mod topology;

pub use connectivity::{Connectivity, CutMode};
pub use executor::{Executor, ExecutorId};
pub use lease::LeaseTable;
pub use network::{DataLocality, NetworkModel};
pub use node::{HealthState, WorkerNode};
pub use topology::{ClusterSpec, ClusterState, RackId};

// Re-export the shared machine id so downstream crates need not import
// custody-dfs for it.
pub use custody_dfs::NodeId;
