//! The network and storage I/O model.
//!
//! Data locality matters because reading a block over the network is slower
//! than reading it from local disk. Two regimes appear in the paper:
//!
//! * The **Linode testbed** (§VI-B): "the nodes we use for experiments
//!   guarantee about 2 Gbps bisection bandwidth for each node, which means
//!   transmitting a data block does not need too much time. Therefore, the
//!   benefit of data locality is actually underestimated". With local SSD
//!   reads at a few hundred MB/s, remote is only ~1.6× slower.
//! * **Production clusters** (§III-C, citing KMN \[10\]): "network
//!   transmission is as much as 20 times slower than local data access".
//!
//! [`NetworkModel`] captures both as presets. Remote reads additionally pay
//! a fixed connection-setup latency, and an optional contention factor
//! models the slowdown when many remote readers share the fabric.

use custody_simcore::SimDuration;

/// How close a reader is to its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DataLocality {
    /// Same machine: local disk read.
    NodeLocal,
    /// Same rack: one switch hop, faster than crossing the core.
    RackLocal,
    /// Anywhere else: crosses the oversubscribed core fabric.
    Remote,
}

/// Storage/network read-time model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Local (same-node) read bandwidth, bytes per second.
    pub local_bytes_per_sec: f64,
    /// Remote (cross-node) effective read bandwidth, bytes per second.
    pub remote_bytes_per_sec: f64,
    /// Rack-local read bandwidth, bytes per second (a single top-of-rack
    /// switch hop; only distinct from remote when the cluster has racks).
    pub rack_bytes_per_sec: f64,
    /// Fixed latency added to every remote read (connection setup,
    /// NameNode round trip).
    pub remote_latency: SimDuration,
    /// Multiplicative slowdown applied per *additional* concurrent remote
    /// reader on the same fabric; `0.0` disables contention modelling.
    pub contention_per_reader: f64,
}

impl NetworkModel {
    /// The paper's Linode testbed: SSD local reads at 400 MB/s, ~2 Gbps
    /// (250 MB/s) effective remote bandwidth, 1 ms setup latency. Remote
    /// reads contend for the shared bisection: each additional concurrent
    /// remote reader slows a transfer by 10 % — at the paper's peak-hour
    /// backlogs this is what makes stragglers without locality "lag far
    /// behind" (§III-C) even on a fast fabric.
    pub fn linode() -> Self {
        NetworkModel {
            local_bytes_per_sec: 400.0e6,
            remote_bytes_per_sec: 250.0e6,
            rack_bytes_per_sec: 350.0e6,
            remote_latency: SimDuration::from_millis(1),
            contention_per_reader: 0.10,
        }
    }

    /// A production-like oversubscribed network where remote reads are 20×
    /// slower than local (the KMN \[10\] figure the paper quotes).
    pub fn production() -> Self {
        NetworkModel {
            local_bytes_per_sec: 400.0e6,
            remote_bytes_per_sec: 20.0e6,
            rack_bytes_per_sec: 100.0e6,
            remote_latency: SimDuration::from_millis(5),
            contention_per_reader: 0.0,
        }
    }

    /// A model with fabric contention enabled: each additional concurrent
    /// remote reader slows every remote read by `per_reader` (e.g. `0.05` =
    /// 5 % per reader).
    pub fn with_contention(mut self, per_reader: f64) -> Self {
        assert!(per_reader >= 0.0);
        self.contention_per_reader = per_reader;
        self
    }

    /// Ratio of remote to local read time for the same bytes (ignoring
    /// latency): how much locality is worth.
    pub fn remote_penalty(&self) -> f64 {
        self.local_bytes_per_sec / self.remote_bytes_per_sec
    }

    /// Time to read `bytes` from local storage.
    pub fn local_read_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.local_bytes_per_sec)
    }

    /// Time to read `bytes` from a remote node with `concurrent_remote`
    /// other remote reads in flight.
    pub fn remote_read_time(&self, bytes: u64, concurrent_remote: usize) -> SimDuration {
        let slowdown = 1.0 + self.contention_per_reader * concurrent_remote as f64;
        self.remote_latency
            + SimDuration::from_secs_f64(bytes as f64 * slowdown / self.remote_bytes_per_sec)
    }

    /// Time to read `bytes` from a node in the same rack: pays the setup
    /// latency but only the top-of-rack hop, with no core contention.
    pub fn rack_read_time(&self, bytes: u64) -> SimDuration {
        self.remote_latency + SimDuration::from_secs_f64(bytes as f64 / self.rack_bytes_per_sec)
    }

    /// Time to read `bytes`, local or remote.
    pub fn read_time(&self, bytes: u64, local: bool, concurrent_remote: usize) -> SimDuration {
        if local {
            self.local_read_time(bytes)
        } else {
            self.remote_read_time(bytes, concurrent_remote)
        }
    }

    /// Time to read `bytes` at the given locality level.
    pub fn read_time_at(
        &self,
        bytes: u64,
        locality: DataLocality,
        concurrent_remote: usize,
    ) -> SimDuration {
        match locality {
            DataLocality::NodeLocal => self.local_read_time(bytes),
            DataLocality::RackLocal => self.rack_read_time(bytes),
            DataLocality::Remote => self.remote_read_time(bytes, concurrent_remote),
        }
    }

    /// Time to shuffle `bytes` across the network (intermediate data always
    /// crosses the fabric; locality does not help shuffles, which is why
    /// the paper "only care\[s\] about the locality for input tasks", §III-A).
    pub fn shuffle_time(&self, bytes: u64) -> SimDuration {
        self.remote_read_time(bytes, 0)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::linode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linode_penalty_is_modest() {
        let m = NetworkModel::linode();
        assert!((m.remote_penalty() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn production_penalty_is_20x() {
        let m = NetworkModel::production();
        assert!((m.remote_penalty() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn local_read_scales_with_bytes() {
        let m = NetworkModel::linode();
        let t1 = m.local_read_time(400_000_000);
        assert_eq!(t1, SimDuration::from_secs(1));
        let t2 = m.local_read_time(200_000_000);
        assert_eq!(t2, SimDuration::from_millis(500));
    }

    #[test]
    fn remote_read_includes_latency() {
        let m = NetworkModel::linode();
        let t = m.remote_read_time(250_000_000, 0);
        assert_eq!(t, SimDuration::from_secs(1) + SimDuration::from_millis(1));
    }

    #[test]
    fn remote_slower_than_local() {
        let m = NetworkModel::linode();
        let bytes = 128_000_000;
        assert!(m.remote_read_time(bytes, 0) > m.local_read_time(bytes));
        assert_eq!(m.read_time(bytes, true, 0), m.local_read_time(bytes));
        assert_eq!(m.read_time(bytes, false, 3), m.remote_read_time(bytes, 3));
    }

    #[test]
    fn contention_slows_remote_reads() {
        let m = NetworkModel::linode().with_contention(0.1);
        let alone = m.remote_read_time(250_000_000, 0);
        let crowded = m.remote_read_time(250_000_000, 10);
        // 10 extra readers at 10% each = 2x transfer time (latency constant).
        let transfer_alone = alone - m.remote_latency;
        let transfer_crowded = crowded - m.remote_latency;
        assert_eq!(transfer_crowded, transfer_alone * 2);
    }

    #[test]
    fn shuffle_always_pays_network() {
        let m = NetworkModel::linode();
        assert_eq!(m.shuffle_time(1000), m.remote_read_time(1000, 0));
    }

    #[test]
    fn default_is_linode() {
        assert_eq!(NetworkModel::default(), NetworkModel::linode());
    }

    #[test]
    fn locality_tiers_order_correctly() {
        let m = NetworkModel::linode();
        let bytes = 128_000_000;
        let node = m.read_time_at(bytes, DataLocality::NodeLocal, 0);
        let rack = m.read_time_at(bytes, DataLocality::RackLocal, 0);
        let remote = m.read_time_at(bytes, DataLocality::Remote, 0);
        assert!(node < rack, "{node} < {rack}");
        assert!(rack < remote, "{rack} < {remote}");
        assert!(DataLocality::NodeLocal < DataLocality::RackLocal);
        assert!(DataLocality::RackLocal < DataLocality::Remote);
    }

    #[test]
    fn rack_reads_skip_core_contention() {
        let m = NetworkModel::linode().with_contention(0.5);
        let uncontended = m.rack_read_time(1_000_000);
        // The same read under heavy core contention is unchanged.
        assert_eq!(m.rack_read_time(1_000_000), uncontended);
        assert!(m.remote_read_time(1_000_000, 20) > uncontended);
    }
}
