//! Cluster construction: declarative specs and the instantiated inventory.

use custody_dfs::{NameNode, NodeId};
use custody_simcore::define_id;

use crate::executor::{Executor, ExecutorId};
use crate::network::NetworkModel;
use crate::node::WorkerNode;

define_id!(
    /// A rack of worker nodes. Nodes are assigned to racks in contiguous
    /// blocks; with one rack (the default) the cluster is flat, matching
    /// the paper's evaluation.
    pub struct RackId, "rack"
);

const GB: u64 = 1_000_000_000;

/// Declarative description of a cluster, mirroring §VI-A1 of the paper:
/// "a 100-node cluster with each node having 8 cores, 16 GB of memory and
/// 384 GB SSD storage. ... Two executors are launched on each node to run
/// tasks. ... the block size is set to 128 MB and the replication level is
/// set to three."
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub num_nodes: usize,
    /// Executors launched per node (paper: 2).
    pub executors_per_node: usize,
    /// Cores per node (paper: 8).
    pub cores_per_node: u32,
    /// Memory per node in bytes (paper: 16 GB).
    pub memory_per_node: u64,
    /// Storage per node in bytes (paper: 384 GB SSD).
    pub storage_per_node: u64,
    /// Block replication factor (paper: 3).
    pub replication: usize,
    /// Number of racks; nodes are split into contiguous, near-equal rack
    /// blocks. `1` = flat cluster (the paper's setting).
    pub racks: usize,
    /// I/O model.
    pub network: NetworkModel,
}

impl ClusterSpec {
    /// A cluster of `num_nodes` with the paper's per-node configuration.
    pub fn paper(num_nodes: usize) -> Self {
        ClusterSpec {
            num_nodes,
            executors_per_node: 2,
            cores_per_node: 8,
            memory_per_node: 16 * GB,
            storage_per_node: 384 * GB,
            replication: 3,
            racks: 1,
            network: NetworkModel::linode(),
        }
    }

    /// The paper's small deployment (25 nodes).
    pub fn paper_small() -> Self {
        Self::paper(25)
    }

    /// The paper's medium deployment (50 nodes).
    pub fn paper_medium() -> Self {
        Self::paper(50)
    }

    /// The paper's full deployment (100 nodes).
    pub fn paper_large() -> Self {
        Self::paper(100)
    }

    /// A tiny cluster for worked examples (Figs. 1, 3, 4): `n` nodes,
    /// one single-slot executor each, replication 1 so each block lives on
    /// exactly one node.
    pub fn toy(num_nodes: usize) -> Self {
        ClusterSpec {
            num_nodes,
            executors_per_node: 1,
            cores_per_node: 1,
            memory_per_node: GB,
            storage_per_node: 384 * GB,
            replication: 1,
            racks: 1,
            network: NetworkModel::linode(),
        }
    }

    /// Overrides the replication factor.
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication;
        self
    }

    /// Overrides the network model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Overrides the executors-per-node count.
    pub fn with_executors_per_node(mut self, k: usize) -> Self {
        self.executors_per_node = k;
        self
    }

    /// Splits the cluster into `racks` racks.
    pub fn with_racks(mut self, racks: usize) -> Self {
        assert!(racks > 0, "need at least one rack");
        self.racks = racks;
        self
    }

    /// The rack hosting `node` under this spec: contiguous blocks of
    /// `ceil(nodes/racks)` nodes.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        let per_rack = self.num_nodes.div_ceil(self.racks);
        RackId::new(node.index() / per_rack)
    }

    /// Rack assignment for every node, indexed by node id.
    pub fn rack_assignment(&self) -> Vec<RackId> {
        (0..self.num_nodes)
            .map(|n| self.rack_of(NodeId::new(n)))
            .collect()
    }

    /// Total executors this spec will instantiate.
    pub fn total_executors(&self) -> usize {
        self.num_nodes * self.executors_per_node
    }

    /// Builds the matching NameNode (one DataNode per worker).
    pub fn build_namenode(&self) -> NameNode {
        NameNode::new(self.num_nodes, self.storage_per_node, self.replication)
    }

    /// Instantiates the node/executor inventory.
    pub fn build_cluster(&self) -> ClusterState {
        ClusterState::new(self)
    }
}

/// The instantiated cluster: nodes and the executors on them.
///
/// Executor ids are dense and ordered node-major: node 0 hosts executors
/// `0..k`, node 1 hosts `k..2k`, and so on — making allocations in worked
/// examples easy to read.
#[derive(Debug, Clone)]
pub struct ClusterState {
    nodes: Vec<WorkerNode>,
    executors: Vec<Executor>,
    network: NetworkModel,
    racks: Vec<RackId>,
}

impl ClusterState {
    /// Instantiates `spec`.
    pub fn new(spec: &ClusterSpec) -> Self {
        assert!(spec.num_nodes > 0, "cluster must have nodes");
        assert!(spec.executors_per_node > 0, "nodes must host executors");
        let mut nodes = Vec::with_capacity(spec.num_nodes);
        let mut executors = Vec::with_capacity(spec.total_executors());
        for n in 0..spec.num_nodes {
            let node_id = NodeId::new(n);
            let mut node = WorkerNode::new(node_id, spec.cores_per_node, spec.memory_per_node);
            for _ in 0..spec.executors_per_node {
                let exec_id = ExecutorId::new(executors.len());
                executors.push(Executor::new(exec_id, node_id));
                node.executors.push(exec_id);
            }
            nodes.push(node);
        }
        ClusterState {
            nodes,
            executors,
            network: spec.network.clone(),
            racks: spec.rack_assignment(),
        }
    }

    /// Number of worker nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of executors.
    pub fn num_executors(&self) -> usize {
        self.executors.len()
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> &WorkerNode {
        &self.nodes[id.index()]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[WorkerNode] {
        &self.nodes
    }

    /// Executor metadata.
    pub fn executor(&self, id: ExecutorId) -> &Executor {
        &self.executors[id.index()]
    }

    /// All executors in id order.
    pub fn executors(&self) -> &[Executor] {
        &self.executors
    }

    /// The node hosting `executor`.
    pub fn node_of(&self, executor: ExecutorId) -> NodeId {
        self.executors[executor.index()].node
    }

    /// The executors hosted on `node`, in id order.
    pub fn executors_on(&self, node: NodeId) -> &[ExecutorId] {
        &self.nodes[node.index()].executors
    }

    /// The I/O model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// The rack hosting `node`.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.racks[node.index()]
    }

    /// Whether two nodes share a rack.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.racks[a.index()] == self.racks[b.index()]
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.racks
            .iter()
            .map(|r| r.index())
            .max()
            .map_or(1, |m| m + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_matches_evaluation_setup() {
        let s = ClusterSpec::paper_large();
        assert_eq!(s.num_nodes, 100);
        assert_eq!(s.executors_per_node, 2);
        assert_eq!(s.cores_per_node, 8);
        assert_eq!(s.replication, 3);
        assert_eq!(s.total_executors(), 200);
        assert_eq!(ClusterSpec::paper_small().num_nodes, 25);
        assert_eq!(ClusterSpec::paper_medium().num_nodes, 50);
    }

    #[test]
    fn build_cluster_node_major_ids() {
        let c = ClusterSpec::paper(3).build_cluster();
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.num_executors(), 6);
        assert_eq!(c.node_of(ExecutorId::new(0)), NodeId::new(0));
        assert_eq!(c.node_of(ExecutorId::new(1)), NodeId::new(0));
        assert_eq!(c.node_of(ExecutorId::new(2)), NodeId::new(1));
        assert_eq!(c.node_of(ExecutorId::new(5)), NodeId::new(2));
        assert_eq!(
            c.executors_on(NodeId::new(1)),
            &[ExecutorId::new(2), ExecutorId::new(3)]
        );
    }

    #[test]
    fn toy_cluster_one_executor_per_node() {
        let c = ClusterSpec::toy(4).build_cluster();
        assert_eq!(c.num_executors(), 4);
        for n in 0..4 {
            assert_eq!(c.executors_on(NodeId::new(n)).len(), 1);
        }
    }

    #[test]
    fn namenode_matches_spec() {
        let s = ClusterSpec::paper(10);
        let nn = s.build_namenode();
        assert_eq!(nn.num_nodes(), 10);
        assert_eq!(nn.replication(), 3);
        assert_eq!(nn.datanode(NodeId::new(0)).capacity_bytes(), 384 * GB);
    }

    #[test]
    fn builders_override() {
        let s = ClusterSpec::paper(5)
            .with_replication(2)
            .with_executors_per_node(3)
            .with_network(NetworkModel::production());
        assert_eq!(s.replication, 2);
        assert_eq!(s.total_executors(), 15);
        assert!((s.network.remote_penalty() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cluster must have nodes")]
    fn empty_cluster_rejected() {
        let _ = ClusterSpec::toy(0).build_cluster();
    }

    #[test]
    fn rack_assignment_contiguous_blocks() {
        let s = ClusterSpec::paper(10).with_racks(3); // ceil(10/3) = 4
        assert_eq!(s.rack_of(NodeId::new(0)), RackId::new(0));
        assert_eq!(s.rack_of(NodeId::new(3)), RackId::new(0));
        assert_eq!(s.rack_of(NodeId::new(4)), RackId::new(1));
        assert_eq!(s.rack_of(NodeId::new(9)), RackId::new(2));
        let c = s.build_cluster();
        assert_eq!(c.num_racks(), 3);
        assert!(c.same_rack(NodeId::new(0), NodeId::new(3)));
        assert!(!c.same_rack(NodeId::new(3), NodeId::new(4)));
    }

    #[test]
    fn default_is_one_flat_rack() {
        let c = ClusterSpec::paper(5).build_cluster();
        assert_eq!(c.num_racks(), 1);
        assert!(c.same_rack(NodeId::new(0), NodeId::new(4)));
    }
}
