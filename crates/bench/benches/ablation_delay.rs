//! Ablation — delay-scheduling wait threshold (§V interaction). Prints
//! the sweep, then times the delay scheduler's offer path.

use criterion::{criterion_group, criterion_main, Criterion};
use custody_bench::{ablation_delay_table, FigureOptions};
use custody_dfs::NodeId;
use custody_scheduler::{DelayScheduler, RunnableTask, TaskScheduler};
use custody_simcore::{SimDuration, SimRng, SimTime};
use custody_workload::JobId;

fn runnable(seed: u64, n: usize) -> Vec<RunnableTask> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| RunnableTask {
            job: JobId::new(i / 20),
            stage: 0,
            task_index: i % 20,
            preferred_nodes: rng
                .choose_distinct(100, 3)
                .into_iter()
                .map(NodeId::new)
                .collect(),
            runnable_since: SimTime::from_millis(i as u64),
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    println!("{}", ablation_delay_table(&FigureOptions::quick()));

    let tasks = runnable(1, 200);
    let mut g = c.benchmark_group("ablation_delay");
    g.bench_function("offer_200_runnable_tasks", |b| {
        let mut s = DelayScheduler::new(SimDuration::from_secs(3));
        b.iter(|| s.on_offer(NodeId::new(0), &tasks, SimTime::from_secs(1)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
