//! Ablation — replica placement (§VII): random 3-way vs popularity-based
//! placement under Custody and the baseline. Prints the comparison, then
//! times dataset creation under each policy.

use criterion::{criterion_group, criterion_main, Criterion};
use custody_bench::{ablation_placement_table, FigureOptions};
use custody_dfs::{NameNode, PopularityPlacement, RandomPlacement, DEFAULT_BLOCK_SIZE};
use custody_simcore::SimRng;

fn bench(c: &mut Criterion) {
    println!("{}", ablation_placement_table(&FigureOptions::quick()));

    let mut g = c.benchmark_group("ablation_placement");
    g.bench_function("create_dataset_random_8gb", |b| {
        b.iter(|| {
            let mut nn = NameNode::new(100, 384_000_000_000, 3);
            let mut rng = SimRng::seed_from_u64(1);
            nn.create_dataset(
                "d",
                8_000_000_000,
                DEFAULT_BLOCK_SIZE,
                &mut RandomPlacement,
                &mut rng,
            )
        })
    });
    g.bench_function("create_dataset_popularity_8gb", |b| {
        b.iter(|| {
            let mut nn = NameNode::new(100, 384_000_000_000, 3);
            let mut rng = SimRng::seed_from_u64(1);
            nn.create_dataset(
                "d",
                8_000_000_000,
                DEFAULT_BLOCK_SIZE,
                &mut PopularityPlacement,
                &mut rng,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
