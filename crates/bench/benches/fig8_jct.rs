//! Fig. 8 — average job completion times: Custody vs Spark standalone.
//! Prints the regenerated figure rows, then times full campaign runs.

use criterion::{criterion_group, criterion_main, Criterion};
use custody_bench::{fig8_table, run_sweep, FigureOptions};
use custody_sim::{AllocatorKind, SimConfig, Simulation, WorkloadKind};

fn bench(c: &mut Criterion) {
    let opts = FigureOptions::quick();
    println!("{}", fig8_table(&run_sweep(&opts)));

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for kind in [AllocatorKind::Custody, AllocatorKind::StaticSpread] {
        g.bench_function(format!("run_wordcount_50_{kind}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::paper(WorkloadKind::WordCount, 50, kind, 3);
                cfg.campaign = cfg.campaign.with_jobs_per_app(3);
                Simulation::run(&cfg)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
