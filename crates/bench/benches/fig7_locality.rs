//! Fig. 7 — data locality of input tasks: Custody vs Spark standalone,
//! three workloads × three cluster sizes. Prints the regenerated figure
//! rows, then times one comparison cell end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};
use custody_bench::{fig7_fixed_quota_table, fig7_table, run_sweep, FigureOptions};
use custody_sim::experiment::run_cell;
use custody_sim::WorkloadKind;

fn bench(c: &mut Criterion) {
    let opts = FigureOptions::quick();
    println!("{}", fig7_table(&run_sweep(&opts)));
    println!("{}", fig7_fixed_quota_table(&opts));

    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("cell_sort_25_nodes", |b| {
        b.iter(|| run_cell(WorkloadKind::Sort, 25, 2, 1))
    });
    g.bench_function("cell_pagerank_100_nodes", |b| {
        b.iter(|| run_cell(WorkloadKind::PageRank, 100, 2, 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
