//! Fig. 10 — average scheduler delay vs cluster size. Prints the
//! regenerated figure rows, then times the dispatch-heavy 25-node
//! (congested) configuration where delay accounting is hottest.

use criterion::{criterion_group, criterion_main, Criterion};
use custody_bench::{fig10_table, run_sweep, FigureOptions};
use custody_sim::{AllocatorKind, SimConfig, Simulation, WorkloadKind};

fn bench(c: &mut Criterion) {
    let opts = FigureOptions::quick();
    println!("{}", fig10_table(&run_sweep(&opts)));

    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("run_wordcount_25_congested", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::paper(WorkloadKind::WordCount, 25, AllocatorKind::Custody, 7);
            cfg.campaign = cfg.campaign.with_jobs_per_app(3);
            Simulation::run(&cfg)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
