//! Chaos sweep — locality and recovery under stochastic faults. Prints
//! the Custody-vs-baseline degradation table, then times a full chaotic
//! run (fault injection + recovery + re-replication on the hot path)
//! and the same run with the invariant auditor forced on, so the
//! auditor's overhead is tracked release-to-release.

use criterion::{criterion_group, criterion_main, Criterion};
use custody_bench::{chaos_table, FigureOptions};
use custody_sim::{AllocatorKind, ChaosConfig, SimConfig, Simulation, WorkloadKind};

fn chaotic_config(audit: bool) -> SimConfig {
    let chaos = ChaosConfig::default()
        .with_mean_time_between_faults(20.0)
        .with_horizon(200.0);
    let mut cfg = SimConfig::paper(WorkloadKind::WordCount, 25, AllocatorKind::Custody, 42)
        .with_chaos(chaos)
        .with_audit(audit);
    cfg.campaign = cfg.campaign.with_jobs_per_app(5);
    cfg
}

fn bench(c: &mut Criterion) {
    println!("{}", chaos_table(&FigureOptions::quick()));

    let mut g = c.benchmark_group("chaos_sweep");
    g.sample_size(10);
    g.bench_function("chaotic_run_25_nodes", |b| {
        let cfg = chaotic_config(false);
        b.iter(|| Simulation::run(&cfg))
    });
    g.bench_function("chaotic_run_25_nodes_audited", |b| {
        let cfg = chaotic_config(true);
        b.iter(|| Simulation::run(&cfg))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
