//! Fig. 9 — average completion time of map (input) stages in the 100-node
//! cluster. Prints the regenerated figure rows, then times the underlying
//! 100-node simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use custody_bench::{fig9_table, run_sweep, FigureOptions};
use custody_sim::{AllocatorKind, SimConfig, Simulation, WorkloadKind};

fn bench(c: &mut Criterion) {
    let opts = FigureOptions::quick();
    println!("{}", fig9_table(&run_sweep(&opts)));

    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("run_sort_100_custody", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::paper(WorkloadKind::Sort, 100, AllocatorKind::Custody, 5);
            cfg.campaign = cfg.campaign.with_jobs_per_app(3);
            Simulation::run(&cfg)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
