//! Ablation — inter-application strategy (Fig. 3): minimum-locality
//! selection vs naive executor-count fairness. Prints the comparison,
//! then times a full Custody allocation round at 100-node scale.

use criterion::{criterion_group, criterion_main, Criterion};
use custody_bench::{ablation_inter_table, FigureOptions};
use custody_cluster::ExecutorId;
use custody_core::{
    AllocationView, AppState, CustodyAllocator, ExecutorAllocator, ExecutorInfo, JobDemand,
    TaskDemand,
};
use custody_dfs::NodeId;
use custody_simcore::SimRng;
use custody_workload::{AppId, JobId};

/// A 100-node, 4-app view with ~50 pending tasks per app.
fn big_view(seed: u64) -> AllocationView {
    let mut rng = SimRng::seed_from_u64(seed);
    let executors: Vec<ExecutorInfo> = (0..200)
        .map(|i| ExecutorInfo {
            id: ExecutorId::new(i),
            node: NodeId::new(i / 2),
        })
        .collect();
    let apps = (0..4)
        .map(|a| {
            let pending_jobs = (0..5)
                .map(|j| {
                    let tasks: Vec<TaskDemand> = (0..10)
                        .map(|t| TaskDemand {
                            task_index: t,
                            preferred_nodes: rng
                                .choose_distinct(100, 3)
                                .into_iter()
                                .map(NodeId::new)
                                .collect(),
                        })
                        .collect();
                    JobDemand {
                        job: JobId::new(a * 10 + j),
                        pending_tasks: tasks.len(),
                        total_inputs: tasks.len(),
                        satisfied_inputs: 0,
                        unsatisfied_inputs: tasks,
                    }
                })
                .collect();
            AppState {
                app: AppId::new(a),
                quota: 50,
                held: 0,
                local_jobs: 0,
                total_jobs: 5,
                local_tasks: 0,
                total_tasks: 50,
                pending_jobs,
            }
        })
        .collect();
    AllocationView {
        idle: executors.clone(),
        all_executors: executors,
        apps,
    }
}

fn bench(c: &mut Criterion) {
    println!("{}", ablation_inter_table(&FigureOptions::quick()));

    let view = big_view(1);
    let mut rng = SimRng::seed_from_u64(2);
    let mut g = c.benchmark_group("ablation_inter");
    g.bench_function("custody_round_200_executors", |b| {
        let mut alloc = CustodyAllocator::new();
        b.iter(|| alloc.allocate(&view, &mut rng))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
