//! `alloc_round` — allocator throughput, not simulation fidelity.
//!
//! Measures single allocation rounds on synthetic grant-heavy views
//! (every executor idle, demand sized to drain the pool) at
//! 100/500/1000 nodes × 4/16 applications, for:
//!
//! * `custody` — the production round (lazy-deletion heap MINLOCALITY,
//!   cached per-node demand, recycled scratch);
//! * `reference` — the scan-everything executable specification
//!   (`custody_core::custody::reference_allocate`), the "before" the
//!   incremental engine is compared against;
//! * `static-spread` and `dynamic-offer` — the data-unaware baselines,
//!   for context on what a round costs when locality is ignored.
//!
//! Besides the usual per-bench lines, the run writes `BENCH_alloc.json`
//! at the repository root: median ns/round, rounds/sec, and the
//! custody-vs-reference speedup per configuration.

use std::fmt::Write as _;
use std::sync::Arc;

use criterion::{black_box, BenchResult, Criterion};
use custody_cluster::ExecutorId;
use custody_core::custody::reference_allocate;
use custody_core::{
    AllocationView, AppState, CustodyAllocator, DynamicOfferAllocator, ExecutorAllocator,
    ExecutorInfo, JobDemand, StaticSpreadAllocator, TaskDemand,
};
use custody_dfs::NodeId;
use custody_simcore::SimRng;
use custody_workload::{AppId, JobId};

/// Cluster sizes × app counts, matching the ISSUE's acceptance grid.
const CONFIGS: [(usize, usize); 6] = [
    (100, 4),
    (100, 16),
    (500, 4),
    (500, 16),
    (1000, 4),
    (1000, 16),
];

/// A grant-heavy round: one idle executor per node, per-app quotas that
/// together cover the whole pool, and enough pending tasks (3 replicas,
/// random placement) that both the locality and filler phases run hot.
fn synthetic_view(nodes: usize, apps: usize, seed: u64) -> AllocationView {
    let mut rng = SimRng::seed_from_u64(seed);
    let executors: Vec<ExecutorInfo> = (0..nodes)
        .map(|i| ExecutorInfo {
            id: ExecutorId::new(i),
            node: NodeId::new(i),
        })
        .collect();
    let quota = nodes.div_ceil(apps);
    let mut job_counter = 0;
    let app_states: Vec<AppState> = (0..apps)
        .map(|i| {
            let mut pending_jobs = Vec::new();
            let mut demand = 0;
            // Demand slightly over quota so the app stays hungry all round.
            while demand < quota + quota / 4 + 1 {
                let total_inputs = 4 + rng.below(9);
                let unsatisfied_inputs: Vec<TaskDemand> = (0..total_inputs)
                    .map(|t| {
                        let mut prefs: Vec<NodeId> =
                            (0..3).map(|_| NodeId::new(rng.below(nodes))).collect();
                        prefs.sort_unstable();
                        prefs.dedup();
                        TaskDemand {
                            task_index: t,
                            preferred_nodes: Arc::from(prefs),
                        }
                    })
                    .collect();
                pending_jobs.push(JobDemand {
                    job: JobId::new(job_counter),
                    unsatisfied_inputs,
                    pending_tasks: total_inputs,
                    total_inputs,
                    satisfied_inputs: 0,
                });
                job_counter += 1;
                demand += total_inputs;
            }
            let total_jobs = 10 + rng.below(10);
            let total_tasks = total_jobs * 8;
            AppState {
                app: AppId::new(i),
                quota,
                held: 0,
                local_jobs: rng.below(total_jobs),
                total_jobs,
                local_tasks: rng.below(total_tasks),
                total_tasks,
                pending_jobs,
            }
        })
        .collect();
    AllocationView {
        idle: executors.clone(),
        all_executors: executors,
        apps: app_states,
    }
}

fn median_ns(results: &[BenchResult], id: &str) -> u128 {
    results
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("missing bench result {id}"))
        .median()
        .as_nanos()
}

fn bench(c: &mut Criterion) {
    for &(nodes, apps) in &CONFIGS {
        let view = synthetic_view(nodes, apps, 0xA110C);

        // Sanity outside the timed region: the production round and the
        // reference specification must agree on the benched view, so the
        // two rows below measure identical work.
        {
            let mut rng = SimRng::seed_from_u64(0);
            let fast = CustodyAllocator::new().allocate(&view, &mut rng);
            assert_eq!(reference_allocate(&view), fast, "{nodes}x{apps}");
            assert!(!fast.is_empty(), "bench view must produce grants");
        }

        let mut g = c.benchmark_group(format!("alloc_round/{nodes}n_{apps}a"));
        g.sample_size(10);

        // Long-lived allocators: steady-state rounds reuse scratch, which
        // is exactly how the simulation driver calls them.
        let mut custody = CustodyAllocator::new();
        let mut rng = SimRng::seed_from_u64(1);
        g.bench_function("custody", |b| {
            b.iter(|| custody.allocate(black_box(&view), &mut rng))
        });
        g.bench_function("reference", |b| {
            b.iter(|| reference_allocate(black_box(&view)))
        });
        let mut spread = StaticSpreadAllocator::new();
        g.bench_function("static-spread", |b| {
            b.iter(|| spread.allocate(black_box(&view), &mut rng))
        });
        let mut offer = DynamicOfferAllocator::new();
        g.bench_function("dynamic-offer", |b| {
            b.iter(|| offer.allocate(black_box(&view), &mut rng))
        });
        g.finish();
    }

    write_json(&c.take_results());
}

/// Emits `BENCH_alloc.json` at the repository root: one entry per
/// configuration with median ns/round, rounds/sec, and the
/// custody-vs-reference speedup.
fn write_json(results: &[BenchResult]) {
    let mut out = String::from("{\n  \"bench\": \"alloc_round\",\n");
    out.push_str("  \"command\": \"cargo bench -p custody-bench --bench alloc_round\",\n");
    out.push_str("  \"unit\": \"median wall time per allocation round\",\n");
    out.push_str("  \"configs\": [\n");
    for (idx, &(nodes, apps)) in CONFIGS.iter().enumerate() {
        let group = format!("alloc_round/{nodes}n_{apps}a");
        let ns = |name: &str| median_ns(results, &format!("{group}/{name}"));
        let row = |name: &str| {
            let t = ns(name);
            format!(
                "        \"{name}\": {{ \"median_ns\": {t}, \"rounds_per_sec\": {:.1} }}",
                1e9 / t as f64
            )
        };
        let speedup = ns("reference") as f64 / ns("custody") as f64;
        let _ = write!(
            out,
            "    {{\n      \"nodes\": {nodes},\n      \"apps\": {apps},\n      \"results\": {{\n{},\n{},\n{},\n{}\n      }},\n      \"speedup_custody_vs_reference\": {speedup:.2}\n    }}{}\n",
            row("custody"),
            row("reference"),
            row("static-spread"),
            row("dynamic-offer"),
            if idx + 1 < CONFIGS.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_alloc.json");
    std::fs::write(path, &out).expect("write BENCH_alloc.json");
    println!("wrote {path}");
}

fn main() {
    let mut c = Criterion::default();
    bench(&mut c);
}
