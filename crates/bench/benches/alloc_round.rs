//! `alloc_round` — allocator throughput, not simulation fidelity.
//!
//! Measures single allocation rounds on synthetic grant-heavy views
//! (every executor idle, demand sized to drain the pool) at
//! 100–10,000 nodes × 4–64 applications, for:
//!
//! * `custody` — the production round (lazy-deletion heap MINLOCALITY,
//!   cached per-node demand, recycled scratch);
//! * `reference` — the scan-everything executable specification
//!   (`custody_core::custody::reference_allocate`), the "before" the
//!   incremental engine is compared against;
//! * `static-spread` and `dynamic-offer` — the data-unaware baselines,
//!   for context on what a round costs when locality is ignored.
//!
//! Besides the usual per-bench lines, the run writes `BENCH_alloc.json`
//! at the repository root: median ns/round, rounds/sec, and the
//! custody-vs-reference speedup per configuration.

use std::fmt::Write as _;

use criterion::{black_box, BenchResult, Criterion};
use custody_bench::synthetic_round_view;
use custody_core::custody::reference_allocate;
use custody_core::{
    CustodyAllocator, DynamicOfferAllocator, ExecutorAllocator, StaticSpreadAllocator,
};
use custody_simcore::SimRng;

/// Cluster sizes × app counts. The tail extends into the `sim_scale`
/// grid (1k × 64 apps, 10k nodes) so the dense round's scaling shows up
/// in the same per-round numbers as the original shapes.
const CONFIGS: [(usize, usize); 8] = [
    (100, 4),
    (100, 16),
    (500, 4),
    (500, 16),
    (1000, 4),
    (1000, 16),
    (1000, 64),
    (10_000, 16),
];

fn median_ns(results: &[BenchResult], id: &str) -> u128 {
    results
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("missing bench result {id}"))
        .median()
        .as_nanos()
}

fn bench(c: &mut Criterion) {
    for &(nodes, apps) in &CONFIGS {
        let view = synthetic_round_view(nodes, apps, 0xA110C);

        // Sanity outside the timed region: the production round and the
        // reference specification must agree on the benched view, so the
        // two rows below measure identical work.
        {
            let mut rng = SimRng::seed_from_u64(0);
            let fast = CustodyAllocator::new().allocate(&view, &mut rng);
            assert_eq!(reference_allocate(&view), fast, "{nodes}x{apps}");
            assert!(!fast.is_empty(), "bench view must produce grants");
        }

        let mut g = c.benchmark_group(format!("alloc_round/{nodes}n_{apps}a"));
        g.sample_size(10);

        // Long-lived allocators: steady-state rounds reuse scratch, which
        // is exactly how the simulation driver calls them.
        let mut custody = CustodyAllocator::new();
        let mut rng = SimRng::seed_from_u64(1);
        g.bench_function("custody", |b| {
            b.iter(|| custody.allocate(black_box(&view), &mut rng))
        });
        g.bench_function("reference", |b| {
            b.iter(|| reference_allocate(black_box(&view)))
        });
        let mut spread = StaticSpreadAllocator::new();
        g.bench_function("static-spread", |b| {
            b.iter(|| spread.allocate(black_box(&view), &mut rng))
        });
        let mut offer = DynamicOfferAllocator::new();
        g.bench_function("dynamic-offer", |b| {
            b.iter(|| offer.allocate(black_box(&view), &mut rng))
        });
        g.finish();
    }

    write_json(&c.take_results());
}

/// Emits `BENCH_alloc.json` at the repository root: one entry per
/// configuration with median ns/round, rounds/sec, and the
/// custody-vs-reference speedup.
fn write_json(results: &[BenchResult]) {
    let mut out = String::from("{\n  \"bench\": \"alloc_round\",\n");
    out.push_str("  \"command\": \"cargo bench -p custody-bench --bench alloc_round\",\n");
    out.push_str("  \"unit\": \"median wall time per allocation round\",\n");
    out.push_str("  \"configs\": [\n");
    for (idx, &(nodes, apps)) in CONFIGS.iter().enumerate() {
        let group = format!("alloc_round/{nodes}n_{apps}a");
        let ns = |name: &str| median_ns(results, &format!("{group}/{name}"));
        let row = |name: &str| {
            let t = ns(name);
            format!(
                "        \"{name}\": {{ \"median_ns\": {t}, \"rounds_per_sec\": {:.1} }}",
                1e9 / t as f64
            )
        };
        let speedup = ns("reference") as f64 / ns("custody") as f64;
        let _ = write!(
            out,
            "    {{\n      \"nodes\": {nodes},\n      \"apps\": {apps},\n      \"results\": {{\n{},\n{},\n{},\n{}\n      }},\n      \"speedup_custody_vs_reference\": {speedup:.2}\n    }}{}\n",
            row("custody"),
            row("reference"),
            row("static-spread"),
            row("dynamic-offer"),
            if idx + 1 < CONFIGS.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_alloc.json");
    std::fs::write(path, &out).expect("write BENCH_alloc.json");
    println!("wrote {path}");
}

fn main() {
    let mut c = Criterion::default();
    bench(&mut c);
}
