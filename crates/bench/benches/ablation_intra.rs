//! Ablation — intra-application strategy (Fig. 4/5): fewest-tasks-first
//! priority vs round-robin fairness. Prints the comparison, then times
//! the two one-shot matching strategies on a synthetic instance.

use criterion::{criterion_group, criterion_main, Criterion};
use custody_bench::{ablation_intra_table, FigureOptions};
use custody_core::theory::{greedy_local_jobs, roundrobin_local_jobs};
use custody_simcore::SimRng;

fn instance(seed: u64) -> Vec<Vec<Vec<usize>>> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..20)
        .map(|_| {
            let tasks = 1 + rng.below(8);
            (0..tasks)
                .map(|_| {
                    let replicas = 1 + rng.below(3);
                    rng.choose_distinct(64, replicas)
                })
                .collect()
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    println!("{}", ablation_intra_table(&FigureOptions::quick()));

    let jobs = instance(1);
    let mut g = c.benchmark_group("ablation_intra");
    g.bench_function("priority_matching_20_jobs", |b| {
        b.iter(|| greedy_local_jobs(&jobs, 64, 40))
    });
    g.bench_function("roundrobin_matching_20_jobs", |b| {
        b.iter(|| roundrobin_local_jobs(&jobs, 64, 40))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
