//! Theory (Fig. 2, §III) — the flow/matching machinery: quality of the
//! greedy strategy vs exact optima, and the runtime of Dinic max-flow,
//! Hopcroft–Karp, the fractional concurrent-flow bound, and the greedy.

use criterion::{criterion_group, criterion_main, Criterion};
use custody_bench::theory_quality_table;
use custody_cluster::ExecutorId;
use custody_core::theory::{
    greedy_local_jobs, hopcroft_karp, max_concurrent_rate, max_min_locality_vector, Dinic,
    FlowNetwork,
};
use custody_core::{AllocationView, AppState, ExecutorInfo, JobDemand, TaskDemand};
use custody_dfs::NodeId;
use custody_simcore::SimRng;
use custody_workload::{AppId, JobId};

fn random_view(seed: u64, nodes: usize, apps: usize, tasks_per_app: usize) -> AllocationView {
    let mut rng = SimRng::seed_from_u64(seed);
    let executors: Vec<ExecutorInfo> = (0..nodes * 2)
        .map(|i| ExecutorInfo {
            id: ExecutorId::new(i),
            node: NodeId::new(i / 2),
        })
        .collect();
    let apps = (0..apps)
        .map(|a| {
            let tasks: Vec<TaskDemand> = (0..tasks_per_app)
                .map(|t| TaskDemand {
                    task_index: t,
                    preferred_nodes: rng
                        .choose_distinct(nodes, 3.min(nodes))
                        .into_iter()
                        .map(NodeId::new)
                        .collect(),
                })
                .collect();
            AppState {
                app: AppId::new(a),
                quota: tasks_per_app,
                held: 0,
                local_jobs: 0,
                total_jobs: 1,
                local_tasks: 0,
                total_tasks: tasks_per_app,
                pending_jobs: vec![JobDemand {
                    job: JobId::new(a),
                    pending_tasks: tasks_per_app,
                    total_inputs: tasks_per_app,
                    satisfied_inputs: 0,
                    unsatisfied_inputs: tasks,
                }],
            }
        })
        .collect();
    AllocationView {
        idle: executors.clone(),
        all_executors: executors,
        apps,
    }
}

fn bench(c: &mut Criterion) {
    println!("{}", theory_quality_table(500, 42));

    let view = random_view(1, 100, 4, 50);
    let mut g = c.benchmark_group("theory");
    g.bench_function("flow_network_build_100_nodes", |b| {
        b.iter(|| FlowNetwork::from_view(&view))
    });
    g.bench_function("max_concurrent_rate_100_nodes", |b| {
        b.iter(|| max_concurrent_rate(&view))
    });
    g.bench_function("waterfill_vector_100_nodes", |b| {
        b.iter(|| max_min_locality_vector(&view))
    });
    g.bench_function("dinic_grid_maxflow", |b| {
        b.iter(|| {
            let mut d = Dinic::new();
            let s = d.add_node();
            let mid = d.add_nodes(200);
            let t = d.add_node();
            for i in 0..200 {
                d.add_edge(s, mid + i, 1.0);
                d.add_edge(mid + i, t, 1.0);
            }
            d.max_flow(s, t)
        })
    });
    let mut rng = SimRng::seed_from_u64(9);
    let adj: Vec<Vec<usize>> = (0..200).map(|_| rng.choose_distinct(200, 3)).collect();
    g.bench_function("hopcroft_karp_200x200", |b| {
        b.iter(|| hopcroft_karp(&adj, 200))
    });
    let jobs: Vec<Vec<Vec<usize>>> = (0..20)
        .map(|_| (0..8).map(|_| rng.choose_distinct(64, 3)).collect())
        .collect();
    g.bench_function("greedy_matching_20_jobs", |b| {
        b.iter(|| greedy_local_jobs(&jobs, 64, 48))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
