//! Ablation — speculative execution (§IV-B extension). Prints the
//! comparison, then times the straggler-detection policy.

use criterion::{criterion_group, criterion_main, Criterion};
use custody_bench::{ablation_speculation_table, FigureOptions};
use custody_scheduler::speculation::{SpeculationConfig, SpeculationPolicy};
use custody_simcore::{SimDuration, SimTime};

fn bench(c: &mut Criterion) {
    println!("{}", ablation_speculation_table(&FigureOptions::quick()));

    let mut g = c.benchmark_group("ablation_speculation");
    g.bench_function("should_speculate_1000_completions", |b| {
        let mut p = SpeculationPolicy::new(SpeculationConfig::default(), 1000);
        for i in 0..900 {
            p.record_completion(SimDuration::from_millis(900 + i % 200));
        }
        b.iter(|| p.should_speculate(SimTime::ZERO, SimTime::from_secs(5)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
