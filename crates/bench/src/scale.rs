//! Shared scaffolding for the scale benches (`alloc_round`, `sim_scale`).
//!
//! Two builders live here so the Criterion microbench and the end-to-end
//! scale binary measure the same shapes:
//!
//! * [`synthetic_round_view`] — a grant-heavy single allocation round
//!   (every executor idle, demand sized to drain the pool);
//! * [`scale_config`] — a paper-shaped WordCount campaign at an
//!   arbitrary cluster size × application count.

use std::sync::Arc;

use custody_cluster::ExecutorId;
use custody_core::{AllocationView, AppState, ExecutorInfo, JobDemand, TaskDemand};
use custody_dfs::NodeId;
use custody_sim::{AllocatorKind, SimConfig, WorkloadKind};
use custody_simcore::SimRng;
use custody_workload::{AppId, ApplicationSpec, JobId};

/// A grant-heavy round: one idle executor per node, per-app quotas that
/// together cover the whole pool, and enough pending tasks (3 replicas,
/// random placement) that both the locality and filler phases run hot.
pub fn synthetic_round_view(nodes: usize, apps: usize, seed: u64) -> AllocationView {
    let mut rng = SimRng::seed_from_u64(seed);
    let executors: Vec<ExecutorInfo> = (0..nodes)
        .map(|i| ExecutorInfo {
            id: ExecutorId::new(i),
            node: NodeId::new(i),
        })
        .collect();
    let quota = nodes.div_ceil(apps);
    let mut job_counter = 0;
    let app_states: Vec<AppState> = (0..apps)
        .map(|i| {
            let mut pending_jobs = Vec::new();
            let mut demand = 0;
            // Demand slightly over quota so the app stays hungry all round.
            while demand < quota + quota / 4 + 1 {
                let total_inputs = 4 + rng.below(9);
                let unsatisfied_inputs: Vec<TaskDemand> = (0..total_inputs)
                    .map(|t| {
                        let mut prefs: Vec<NodeId> =
                            (0..3).map(|_| NodeId::new(rng.below(nodes))).collect();
                        prefs.sort_unstable();
                        prefs.dedup();
                        TaskDemand {
                            task_index: t,
                            preferred_nodes: Arc::from(prefs),
                        }
                    })
                    .collect();
                pending_jobs.push(JobDemand {
                    job: JobId::new(job_counter),
                    unsatisfied_inputs,
                    pending_tasks: total_inputs,
                    total_inputs,
                    satisfied_inputs: 0,
                });
                job_counter += 1;
                demand += total_inputs;
            }
            let total_jobs = 10 + rng.below(10);
            let total_tasks = total_jobs * 8;
            AppState {
                app: AppId::new(i),
                quota,
                held: 0,
                local_jobs: rng.below(total_jobs),
                total_jobs,
                local_tasks: rng.below(total_tasks),
                total_tasks,
                pending_jobs,
            }
        })
        .collect();
    AllocationView {
        idle: executors.clone(),
        all_executors: executors,
        apps: app_states,
    }
}

/// A paper-shaped WordCount campaign at `nodes` nodes × `apps`
/// applications submitting `jobs_per_app` jobs each — the end-to-end
/// configuration the `sim_scale` grid sweeps.
pub fn scale_config(nodes: usize, apps: usize, jobs_per_app: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper(WorkloadKind::WordCount, nodes, AllocatorKind::Custody, seed);
    cfg.campaign.apps = (0..apps)
        .map(|i| ApplicationSpec {
            name: format!("wordcount-app-{i}"),
            workload: WorkloadKind::WordCount,
        })
        .collect();
    cfg.campaign = cfg.campaign.with_jobs_per_app(jobs_per_app);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_view_is_grant_heavy() {
        let view = synthetic_round_view(50, 4, 7);
        assert_eq!(view.idle.len(), 50);
        let demand: usize = view
            .apps
            .iter()
            .flat_map(|a| &a.pending_jobs)
            .map(|j| j.pending_tasks)
            .sum();
        assert!(demand > 50, "demand must oversubscribe the pool");
    }

    #[test]
    fn scale_config_shapes_the_campaign() {
        let cfg = scale_config(200, 16, 3, 42);
        assert_eq!(cfg.cluster.num_nodes, 200);
        assert_eq!(cfg.campaign.num_apps(), 16);
        assert_eq!(cfg.campaign.jobs_per_app, 3);
    }
}
