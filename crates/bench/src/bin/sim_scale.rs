//! `sim_scale` — end-to-end simulator scalability at 1k–100k nodes.
//!
//! ```text
//! cargo run --release -p custody-bench --bin sim_scale [-- --quick|--full|--check]
//! ```
//!
//! Sweeps paper-shaped WordCount campaigns over a cluster-size ×
//! application-count grid and reports, per cell: wall time of the whole
//! run, the per-phase breakdown the driver now measures (allocator,
//! event-queue pop, demand maintenance), allocation-round counts, and
//! the process's peak RSS. A separate single-round microbench times the
//! production Custody round against the scan-everything
//! `reference_allocate` specification on an identical grant-heavy 10k
//! view and asserts the required ≥5× speedup; the same view is also run
//! with a sick-cluster health-cost table to bound the overhead of the
//! soft-demotion multiplier path.
//!
//! Modes:
//!
//! * `--quick` (default) — {1k, 10k} × {4, 16, 64} grid, plus the 10k
//!   microbench; writes `BENCH_scale.json` at the repository root.
//! * `--full` — adds the 100k × 64 cell (several minutes).
//! * `--check` — CI smoke: one 2k × 16 cell plus the microbench,
//!   compared against `crates/bench/scale_baseline.json`; exits
//!   non-zero if any budgeted number regresses more than 5%, or if the
//!   custody-vs-reference speedup falls below 5×. Writes no JSON.

use std::fmt::Write as _;
use std::time::Instant;

use custody_bench::{scale_config, synthetic_round_view};
use custody_core::custody::{reference_allocate, reference_allocate_with_costs};
use custody_core::{CustodyAllocator, ExecutorAllocator, HealthCost};
use custody_dfs::NodeId;
use custody_sim::{RunMetrics, Simulation};
use custody_simcore::SimRng;

/// One grid cell's measurements.
struct Cell {
    nodes: usize,
    apps: usize,
    jobs_per_app: usize,
    elapsed_secs: f64,
    metrics: RunMetrics,
}

fn run_cell(nodes: usize, apps: usize, jobs_per_app: usize) -> Cell {
    let cfg = scale_config(nodes, apps, jobs_per_app, 42);
    let started = Instant::now();
    let outcome = Simulation::run(&cfg);
    let elapsed_secs = started.elapsed().as_secs_f64();
    let m = outcome.cluster_metrics;
    println!(
        "{nodes:>6} nodes x {apps:>2} apps: {:>7.2} s wall  {:>8} events  \
         {:>6} rounds ({:>9.1} us/round)  alloc {:>7.1} ms  pop {:>6.1} ms  \
         demand {:>6.1} ms  rss {:>7.1} MiB",
        elapsed_secs,
        m.events_processed,
        m.allocation_rounds,
        m.allocator_wall_secs * 1e6 / m.allocation_rounds.max(1) as f64,
        m.allocator_wall_secs * 1e3,
        m.event_pop_wall_secs * 1e3,
        m.demand_wall_secs * 1e3,
        m.peak_rss_bytes as f64 / (1024.0 * 1024.0),
    );
    assert_eq!(
        m.jobs_completed,
        apps * jobs_per_app - m.jobs_failed,
        "scale run lost jobs"
    );
    Cell {
        nodes,
        apps,
        jobs_per_app,
        elapsed_secs,
        metrics: m,
    }
}

/// Times `f` over `iters` calls and returns the fastest wall time in
/// nanoseconds (minimum beats median for single-digit iteration counts:
/// it rejects one-off scheduling noise without needing many samples).
fn best_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .min()
        .expect("at least one iteration")
}

/// Custody vs the reference specification on one grant-heavy view, plus
/// the same production round with a sick-cluster health-cost table.
struct MicroBench {
    nodes: usize,
    apps: usize,
    custody_ns: u128,
    reference_ns: u128,
    costed_ns: u128,
}

impl MicroBench {
    fn speedup(&self) -> f64 {
        self.reference_ns as f64 / self.custody_ns as f64
    }

    /// Wall-time ratio of the health-costed round over the costless one
    /// (1.0 = the multiplier path is free).
    fn cost_slowdown(&self) -> f64 {
        self.costed_ns as f64 / self.custody_ns as f64
    }
}

/// A sick-cluster cost table: 10% of nodes carry a non-neutral health
/// cost spread across the credit buckets — the regime the soft-demotion
/// path pays for (weighted keys, tiered filler, credit bookkeeping).
fn sick_cost_table(nodes: usize) -> Vec<(NodeId, HealthCost)> {
    let scale = 8;
    (0..nodes)
        .map(|n| {
            let cost = if n % 10 == 3 {
                HealthCost::from_ratio(1.5 + (n % 7) as f64 * 0.5, scale, 4.0)
            } else {
                HealthCost::neutral(scale)
            };
            (NodeId::new(n), cost)
        })
        .collect()
}

fn alloc_microbench(nodes: usize, apps: usize) -> MicroBench {
    let view = synthetic_round_view(nodes, apps, 0xA110C);
    // Sanity outside the timed region: both paths must do identical work.
    let mut custody = CustodyAllocator::new();
    let mut rng = SimRng::seed_from_u64(0);
    let fast = custody.allocate(&view, &mut rng);
    assert_eq!(reference_allocate(&view), fast, "{nodes}x{apps}");
    assert!(!fast.is_empty(), "bench view must produce grants");
    let costs = sick_cost_table(nodes);
    let mut costed = CustodyAllocator::new();
    costed.set_node_health_costs(&costs);
    let costed_grants = costed.allocate(&view, &mut rng);
    assert_eq!(
        reference_allocate_with_costs(&view, &costs),
        costed_grants,
        "costed {nodes}x{apps}"
    );

    let custody_ns = best_ns(7, || {
        let grants = custody.allocate(&view, &mut rng);
        std::hint::black_box(grants);
    });
    // The costed timing includes re-feeding the cost vector: that is the
    // real per-round path when the health layer is active.
    let costed_ns = best_ns(7, || {
        costed.set_node_health_costs(&costs);
        let grants = costed.allocate(&view, &mut rng);
        std::hint::black_box(grants);
    });
    let reference_ns = best_ns(3, || {
        let grants = reference_allocate(&view);
        std::hint::black_box(grants);
    });
    let b = MicroBench {
        nodes,
        apps,
        custody_ns,
        reference_ns,
        costed_ns,
    };
    println!(
        "alloc round {nodes} nodes x {apps} apps: custody {:.2} ms vs reference {:.2} ms \
         ({:.1}x speedup); health-costed {:.2} ms ({:.2}x costless)",
        custody_ns as f64 / 1e6,
        reference_ns as f64 / 1e6,
        b.speedup(),
        costed_ns as f64 / 1e6,
        b.cost_slowdown(),
    );
    b
}

fn write_json(cells: &[Cell], micro: &MicroBench, mode: &str) {
    let mut out = String::from("{\n  \"bench\": \"sim_scale\",\n");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p custody-bench --bin sim_scale -- --{mode}\","
    );
    out.push_str("  \"grid\": [\n");
    for (idx, c) in cells.iter().enumerate() {
        let m = &c.metrics;
        let accounted = m.allocator_wall_secs + m.event_pop_wall_secs;
        let _ = writeln!(
            out,
            "    {{ \"nodes\": {}, \"apps\": {}, \"jobs_per_app\": {}, \
             \"elapsed_secs\": {:.3}, \"events\": {}, \"allocation_rounds\": {}, \
             \"rounds_skipped\": {}, \"phases\": {{ \
             \"allocator_wall_secs\": {:.4}, \"allocator_us_per_round\": {:.1}, \
             \"event_pop_wall_secs\": {:.4}, \"demand_wall_secs\": {:.4}, \
             \"other_wall_secs\": {:.4} }}, \"peak_rss_bytes\": {} }}{}",
            c.nodes,
            c.apps,
            c.jobs_per_app,
            c.elapsed_secs,
            m.events_processed,
            m.allocation_rounds,
            m.rounds_skipped,
            m.allocator_wall_secs,
            m.allocator_wall_secs * 1e6 / m.allocation_rounds.max(1) as f64,
            m.event_pop_wall_secs,
            m.demand_wall_secs,
            (c.elapsed_secs - accounted).max(0.0),
            m.peak_rss_bytes,
            if idx + 1 < cells.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"alloc_round_10k\": {{ \"nodes\": {}, \"apps\": {}, \
         \"custody_ns\": {}, \"reference_ns\": {}, \"speedup_custody_vs_reference\": {:.2}, \
         \"costed_ns\": {}, \"cost_round_slowdown\": {:.3} }}",
        micro.nodes,
        micro.apps,
        micro.custody_ns,
        micro.reference_ns,
        micro.speedup(),
        micro.costed_ns,
        micro.cost_slowdown()
    );
    out.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, &out).expect("write BENCH_scale.json");
    println!("wrote {path}");
}

/// Pulls `"key": <number>` out of a flat JSON text (the baseline file is
/// written by this repo, so a full parser would be overkill).
fn json_number(text: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\"");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("baseline is missing {key}"));
    let rest = &text[at + needle.len()..];
    let rest = rest
        .trim_start()
        .strip_prefix(':')
        .expect("baseline key without value");
    let rest = rest.trim_start();
    let end = rest
        .char_indices()
        .find(|(_, ch)| !matches!(ch, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .map_or(rest.len(), |(i, _)| i);
    rest[..end]
        .parse()
        .unwrap_or_else(|e| panic!("baseline {key}: {e}"))
}

/// CI smoke: one mid-size cell under budgets from the checked-in
/// baseline. Budgets carry headroom over a dev-machine measurement; the
/// 5% tolerance guards the budget itself, so a passing run can be up to
/// `budget * 1.05` before the job fails.
fn check(micro: &MicroBench) {
    let baseline = include_str!("../../scale_baseline.json");
    let nodes = json_number(baseline, "nodes") as usize;
    let apps = json_number(baseline, "apps") as usize;
    let jobs = json_number(baseline, "jobs_per_app") as usize;
    let cell = run_cell(nodes, apps, jobs);
    let m = &cell.metrics;
    let mut failed = false;
    let mut gate = |label: &str, measured: f64, budget: f64| {
        let limit = budget * 1.05;
        let verdict = if measured <= limit { "ok" } else { "REGRESSED" };
        println!("  {label}: {measured:.3} vs budget {budget:.3} (limit {limit:.3}) {verdict}");
        failed |= measured > limit;
    };
    println!("scale-smoke vs scale_baseline.json ({nodes} nodes x {apps} apps):");
    gate(
        "elapsed_secs",
        cell.elapsed_secs,
        json_number(baseline, "budget_elapsed_secs"),
    );
    gate(
        "allocator_us_per_round",
        m.allocator_wall_secs * 1e6 / m.allocation_rounds.max(1) as f64,
        json_number(baseline, "budget_allocator_us_per_round"),
    );
    gate(
        "peak_rss_mib",
        m.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        json_number(baseline, "budget_peak_rss_mib"),
    );
    gate(
        "min_speedup_custody_vs_reference (inverted: lower bound)",
        json_number(baseline, "min_speedup_custody_vs_reference") / micro.speedup(),
        1.0,
    );
    gate(
        "cost_round_slowdown",
        micro.cost_slowdown(),
        json_number(baseline, "max_cost_round_slowdown"),
    );
    if failed {
        eprintln!("scale-smoke FAILED: a budget regressed by more than 5%");
        std::process::exit(1);
    }
    println!("scale-smoke passed");
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "--quick".into());
    match mode.as_str() {
        "--check" => {
            let micro = alloc_microbench(10_000, 16);
            check(&micro);
        }
        "--quick" | "--full" => {
            let full = mode == "--full";
            let mut cells = Vec::new();
            for &nodes in &[1_000usize, 10_000] {
                for &apps in &[4usize, 16, 64] {
                    cells.push(run_cell(nodes, apps, 2));
                }
            }
            if full {
                cells.push(run_cell(100_000, 64, 2));
            }
            let micro = alloc_microbench(10_000, 16);
            assert!(
                micro.speedup() >= 5.0,
                "custody round must be at least 5x the reference at 10k nodes, got {:.1}x",
                micro.speedup()
            );
            write_json(&cells, &micro, if full { "full" } else { "quick" });
        }
        other => panic!("unknown mode {other:?} (--quick|--full|--check)"),
    }
}
