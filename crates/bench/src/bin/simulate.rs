//! Run one simulation from the command line.
//!
//! ```text
//! cargo run --release -p custody-bench --bin simulate -- \
//!     --workload sort --nodes 50 --allocator custody --jobs 10 --seed 42 \
//!     [--baseline spark-static] [--racks 4] [--placement rack-aware] \
//!     [--quota 12] [--scheduler delay:3000|fifo|locality-first] \
//!     [--fail 10:3] [--chaos <mtbf-secs>[:<downtime-secs>]] [--audit] \
//!     [--detector <drop-prob>[:<suspicion-secs>]] [--checkpoint <secs>] \
//!     [--master-crash <prob>] [--speculation] \
//!     [--failslow <sick-fraction>[:<fault-prob>]] [--no-quarantine] \
//!     [--partition <split-fraction>[:<mean-heal-secs>]] \
//!     [--corruption <latent-fraction>[:<scrub-interval-secs>]] \
//!     [--demotion soft|hard|off] [--retry-budget <n>] \
//!     [--trace out.tsv] [--analyze]
//! ```
//!
//! With `--baseline <allocator>` the same configuration is run twice and
//! the comparison printed; `--trace` writes the per-task TSV log.

use custody_core::AllocatorKind;
use custody_dfs::NodeId;
use custody_scheduler::speculation::SpeculationConfig;
use custody_scheduler::SchedulerKind;
use custody_sim::report::summary_row;
use custody_sim::{NodeFailure, PlacementKind, QuotaMode, SimConfig, Simulation, WorkloadKind};
use custody_simcore::{SimDuration, SimTime};

fn parse_workload(s: &str) -> WorkloadKind {
    match s {
        "pagerank" => WorkloadKind::PageRank,
        "wordcount" => WorkloadKind::WordCount,
        "sort" => WorkloadKind::Sort,
        "sqlscan" => WorkloadKind::SqlScan,
        "kmeans" => WorkloadKind::KMeans,
        other => panic!("unknown workload {other:?} (pagerank|wordcount|sort|sqlscan|kmeans)"),
    }
}

fn parse_allocator(s: &str) -> AllocatorKind {
    match s {
        "custody" => AllocatorKind::Custody,
        "spark-static" => AllocatorKind::StaticSpread,
        "static-random" => AllocatorKind::StaticRandom,
        "dynamic-offer" => AllocatorKind::DynamicOffer,
        "custody-fair-intra" => AllocatorKind::CustodyFairIntra,
        "custody-naive-inter" => AllocatorKind::CustodyNaiveInter,
        other => panic!("unknown allocator {other:?}"),
    }
}

fn parse_placement(s: &str) -> PlacementKind {
    match s {
        "random" => PlacementKind::Random,
        "round-robin" => PlacementKind::RoundRobin,
        "popularity" => PlacementKind::Popularity,
        "rack-aware" => PlacementKind::RackAware,
        other => panic!("unknown placement {other:?}"),
    }
}

fn parse_scheduler(s: &str) -> SchedulerKind {
    if let Some(ms) = s.strip_prefix("delay:") {
        let ms: u64 = ms.parse().expect("delay:<milliseconds>");
        return SchedulerKind::Delay(SimDuration::from_millis(ms));
    }
    match s {
        "delay" => SchedulerKind::spark_default(),
        "fifo" => SchedulerKind::Fifo,
        "locality-first" => SchedulerKind::LocalityFirst,
        other => panic!("unknown scheduler {other:?}"),
    }
}

fn main() {
    let mut workload = WorkloadKind::Sort;
    let mut nodes = 25usize;
    let mut allocator = AllocatorKind::Custody;
    let mut baseline: Option<AllocatorKind> = None;
    let mut jobs = 10usize;
    let mut seed = 42u64;
    let mut racks = 1usize;
    let mut placement = PlacementKind::Random;
    let mut quota: Option<usize> = None;
    let mut scheduler = SchedulerKind::spark_default();
    let mut failures: Vec<NodeFailure> = Vec::new();
    let mut chaos: Option<custody_sim::ChaosConfig> = None;
    let mut control_plane: Option<custody_sim::ControlPlaneConfig> = None;
    let mut checkpoint_secs: Option<f64> = None;
    let mut master_crash: Option<f64> = None;
    let mut audit = false;
    let mut speculation = false;
    let mut failslow: Option<custody_sim::FailSlowConfig> = None;
    let mut partition: Option<custody_sim::PartitionConfig> = None;
    let mut corruption: Option<custody_sim::CorruptionConfig> = None;
    let mut no_quarantine = false;
    let mut demotion: Option<String> = None;
    let mut retry_budget: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut analyze = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--workload" => workload = parse_workload(&val()),
            "--nodes" => nodes = val().parse().expect("--nodes <n>"),
            "--allocator" => allocator = parse_allocator(&val()),
            "--baseline" => baseline = Some(parse_allocator(&val())),
            "--jobs" => jobs = val().parse().expect("--jobs <n>"),
            "--seed" => seed = val().parse().expect("--seed <n>"),
            "--racks" => racks = val().parse().expect("--racks <n>"),
            "--placement" => placement = parse_placement(&val()),
            "--quota" => quota = Some(val().parse().expect("--quota <n>")),
            "--scheduler" => scheduler = parse_scheduler(&val()),
            "--fail" => {
                let v = val();
                let (t, n) = v.split_once(':').expect("--fail <secs>:<node>");
                failures.push(NodeFailure {
                    at: SimTime::from_secs(t.parse().expect("seconds")),
                    node: NodeId::new(n.parse().expect("node index")),
                });
            }
            "--chaos" => {
                let v = val();
                let (mtbf, downtime) = match v.split_once(':') {
                    Some((m, d)) => (
                        m.parse().expect("--chaos <mtbf-secs>[:<downtime-secs>]"),
                        d.parse().expect("downtime seconds"),
                    ),
                    None => (v.parse().expect("--chaos <mtbf-secs>"), 30.0),
                };
                let mut c = custody_sim::ChaosConfig::default().with_mean_time_between_faults(mtbf);
                c.mean_downtime_secs = downtime;
                chaos = Some(c);
            }
            "--detector" => {
                let v = val();
                let cp = custody_sim::ControlPlaneConfig::default();
                control_plane = Some(match v.split_once(':') {
                    Some((drop, timeout)) => cp
                        .with_drop_probability(
                            drop.parse()
                                .expect("--detector <drop-prob>[:<suspicion-secs>]"),
                        )
                        .with_suspicion_timeout(timeout.parse().expect("suspicion seconds")),
                    None => cp.with_drop_probability(v.parse().expect("--detector <drop-prob>")),
                });
            }
            "--checkpoint" => checkpoint_secs = Some(val().parse().expect("--checkpoint <secs>")),
            "--master-crash" => master_crash = Some(val().parse().expect("--master-crash <prob>")),
            "--audit" => audit = true,
            "--speculation" => speculation = true,
            "--failslow" => {
                let v = val();
                let fs = custody_sim::FailSlowConfig::default();
                failslow = Some(match v.split_once(':') {
                    Some((sick, fault)) => fs
                        .with_sick_fraction(
                            sick.parse()
                                .expect("--failslow <sick-fraction>[:<fault-prob>]"),
                        )
                        .with_transient_fault_prob(fault.parse().expect("fault probability")),
                    None => fs.with_sick_fraction(v.parse().expect("--failslow <sick-fraction>")),
                });
            }
            "--partition" => {
                let v = val();
                let pc = custody_sim::PartitionConfig::default();
                partition = Some(match v.split_once(':') {
                    Some((split, heal)) => pc
                        .with_split_fraction(
                            split
                                .parse()
                                .expect("--partition <split-fraction>[:<mean-heal-secs>]"),
                        )
                        .with_mean_heal(heal.parse().expect("mean heal seconds")),
                    None => {
                        pc.with_split_fraction(v.parse().expect("--partition <split-fraction>"))
                    }
                });
            }
            "--corruption" => {
                let v = val();
                let cc = custody_sim::CorruptionConfig::default();
                corruption = Some(match v.split_once(':') {
                    Some((latent, scrub)) => cc
                        .with_latent_fraction(
                            latent
                                .parse()
                                .expect("--corruption <latent-fraction>[:<scrub-interval-secs>]"),
                        )
                        .with_scrub_interval(scrub.parse().expect("scrub interval seconds")),
                    None => {
                        cc.with_latent_fraction(v.parse().expect("--corruption <latent-fraction>"))
                    }
                });
            }
            "--no-quarantine" => no_quarantine = true,
            "--demotion" => demotion = Some(val()),
            "--retry-budget" => {
                retry_budget = Some(val().parse().expect("--retry-budget <n>"));
            }
            "--trace" => trace_path = Some(val()),
            "--analyze" => analyze = true,
            other => panic!("unknown flag {other:?}"),
        }
    }

    let mut cfg = SimConfig::paper(workload, nodes, allocator, seed)
        .with_scheduler(scheduler)
        .with_placement(placement)
        .with_failures(failures);
    cfg.campaign = cfg.campaign.with_jobs_per_app(jobs);
    cfg.cluster = cfg.cluster.with_racks(racks);
    if let Some(q) = quota {
        cfg = cfg.with_quota(QuotaMode::FixedPerApp(q));
    }
    if let Some(c) = chaos {
        cfg = cfg.with_chaos(c);
    }
    if audit {
        cfg = cfg.with_audit(true);
    }
    if speculation {
        cfg = cfg.with_speculation(SpeculationConfig::default());
    }
    if checkpoint_secs.is_some() || master_crash.is_some() {
        let mut cp = control_plane.unwrap_or_default();
        if let Some(secs) = checkpoint_secs {
            cp = cp.with_checkpoints(secs);
        }
        if let Some(p) = master_crash {
            cp = cp.with_master_crash_fraction(p);
        }
        control_plane = Some(cp);
    }
    if let Some(cp) = control_plane {
        cfg = cfg.with_control_plane(cp);
    }
    if no_quarantine || demotion.is_some() || retry_budget.is_some() {
        let mut fs =
            failslow.expect("--no-quarantine / --demotion / --retry-budget modify --failslow");
        if no_quarantine {
            fs = fs.with_detection(false);
        }
        match demotion.as_deref() {
            Some("soft") => fs = fs.with_demotion(true).with_soft_demotion(true),
            Some("hard") => fs = fs.with_demotion(true).with_soft_demotion(false),
            Some("off") => fs = fs.with_demotion(false),
            Some(other) => panic!("unknown demotion mode {other:?} (soft|hard|off)"),
            None => {}
        }
        if let Some(budget) = retry_budget {
            fs = fs.with_retry_budget(budget);
        }
        failslow = Some(fs);
    }
    if let Some(fs) = failslow {
        cfg = cfg.with_failslow(fs);
    }
    if let Some(pc) = partition {
        cfg = cfg.with_partition(pc);
    }
    if let Some(cc) = corruption {
        cfg = cfg.with_corruption(cc);
    }

    println!("{}\n", cfg.label());
    let (outcome, trace) = Simulation::run_traced(&cfg);
    println!(
        "{}",
        summary_row(allocator.name(), &outcome.cluster_metrics)
    );
    let m = &outcome.cluster_metrics;
    println!(
        "jobs {}  makespan {}  events {}  alloc-rounds {}  requeued {}  clones {}",
        m.jobs_completed,
        m.makespan,
        m.events_processed,
        m.allocation_rounds,
        m.tasks_requeued,
        m.tasks_speculated,
    );
    if m.nodes_failed + m.executor_faults + m.degraded_windows > 0 {
        println!(
            "faults: {} node, {} executor-only, {} degradation windows  recovered {}  \
             clone races {}W/{}L  fault-to-stable {:.1} s mean ({} disruptions)  peak queue {}",
            m.nodes_failed,
            m.executor_faults,
            m.degraded_windows,
            m.nodes_recovered,
            m.clones_won,
            m.clones_lost,
            m.requeue_drain_secs.mean(),
            m.requeue_drain_secs.count(),
            m.peak_queue_len,
        );
    }
    if m.blocks_lost > 0 {
        println!(
            "data loss: {} blocks unrecoverable (sole replica on a failed machine)",
            m.blocks_lost
        );
    }
    if control_plane.is_some() {
        println!(
            "detector: {} false suspicions  detection latency {:.2} s mean / {:.2} s max ({})  \
             leases revoked {}  stale finishes fenced {} ({} unfenced)",
            m.false_suspicions,
            m.detection_latency_secs.mean(),
            m.detection_latency_secs.max().unwrap_or(0.0),
            m.detection_latency_secs.count(),
            m.leases_revoked,
            m.stale_finishes_fenced,
            m.unfenced_stale_finishes,
        );
        if m.master_recoveries > 0 {
            println!(
                "master: {} crash/recovery cycles, each replayed from checkpoint + WAL and \
                 convergence-checked",
                m.master_recoveries
            );
        }
    }
    if failslow.is_some() {
        println!(
            "gray failures: {} onsets  {} task faults ({} retried, {} jobs failed)  \
             {} quarantined ({} false)  quarantine latency {:.1} s mean ({})  {} probes",
            m.failslow_onsets,
            m.task_faults_injected,
            m.task_retries,
            m.jobs_failed,
            m.nodes_quarantined,
            m.false_quarantines,
            m.quarantine_latency_secs.mean(),
            m.quarantine_latency_secs.count(),
            m.probes_launched,
        );
    }
    if partition.is_some() {
        println!(
            "partitions: {} episodes  {} minority finishes deferred ({} fenced stale)  \
             {} minority attempts discarded at reconnect  reconverge {:.1} s mean ({})",
            m.partition_episodes,
            m.partition_finishes_deferred,
            m.partition_finishes_fenced,
            m.partition_work_discarded,
            m.partition_reconverge_secs.mean(),
            m.partition_reconverge_secs.count(),
        );
    }
    if corruption.is_some() {
        println!(
            "corruption: {} replicas rotted  detected {} by read / {} by scrub  \
             latency {:.1} s mean ({})  {} repaired  {} blocks unavailable ({} recovered)  \
             lost {} / at risk {}  {} jobs failed unavailable",
            m.replicas_corrupted,
            m.corrupt_reads_detected,
            m.scrub_detections,
            m.corruption_detection_secs.mean(),
            m.corruption_detection_secs.count(),
            m.replicas_repaired,
            m.blocks_unavailable,
            m.blocks_recovered,
            m.blocks_permanently_lost,
            m.blocks_at_risk,
            m.jobs_failed_unavailable,
        );
    }
    println!(
        "allocator: {:.3} ms wall total ({:.2} µs/round)  rounds skipped {}",
        m.allocator_wall_secs * 1e3,
        m.allocator_wall_secs * 1e6 / m.allocation_rounds.max(1) as f64,
        m.rounds_skipped,
    );
    println!(
        "host: event-pop {:.3} ms wall  demand maintenance {:.3} ms wall  peak RSS {:.1} MiB",
        m.event_pop_wall_secs * 1e3,
        m.demand_wall_secs * 1e3,
        m.peak_rss_bytes as f64 / (1024.0 * 1024.0),
    );

    if let Some(base) = baseline {
        let other = Simulation::run(&cfg.clone().with_allocator(base));
        println!("{}", summary_row(base.name(), &other.cluster_metrics));
    }

    if analyze {
        use custody_sim::analysis::{concurrency_timeline, node_utilization, sparkline};
        let bucket = SimDuration::from_secs(1);
        let timeline = concurrency_timeline(&trace, bucket);
        println!("\nconcurrent tasks (1s buckets):");
        println!("  {}", sparkline(&timeline));
        let util = node_utilization(&trace, nodes, cfg.cluster.executors_per_node);
        let mean = util.iter().sum::<f64>() / util.len().max(1) as f64;
        let max = util.iter().copied().fold(0.0_f64, f64::max);
        println!(
            "node utilization: mean {:.1} %  max {:.1} %  (over {} nodes)",
            mean * 100.0,
            max * 100.0,
            util.len()
        );
    }

    if let Some(path) = trace_path {
        std::fs::write(&path, trace.to_tsv()).expect("write trace");
        println!("trace: {} task records -> {path}", trace.len());
    }
}
