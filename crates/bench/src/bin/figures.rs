//! Regenerates the paper's evaluation figures from the simulator.
//!
//! ```text
//! cargo run --release -p custody-bench --bin figures -- all
//! cargo run --release -p custody-bench --bin figures -- fig7 fig8
//! cargo run --release -p custody-bench --bin figures -- --quick all
//! cargo run --release -p custody-bench --bin figures -- --jobs 10 --seed 7 fig10
//! ```
//!
//! Targets: `fig7`, `fig7-fixed`, `fig8`, `fig9`, `fig10`, `ablations`,
//! `chaos`, `partition`, `durability`, `detector`, `failslow`,
//! `demotion`, `theory`, `all`.

use custody_bench::{
    ablation_delay_table, ablation_inter_table, ablation_intra_table, ablation_placement_table,
    ablation_speculation_table, allocator_cost_summary, chaos_table, demotion_table,
    detector_table, durability_table, failslow_table, fig10_table, fig7_fixed_quota_table,
    fig7_table, fig8_table, fig9_table, partition_table, run_sweep, theory_quality_table,
    FigureOptions,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = FigureOptions::default();
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts = FigureOptions::quick(),
            "--jobs" => {
                opts.jobs_per_app = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs requires a number");
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires a number");
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".into());
    }
    let all = targets.iter().any(|t| t == "all");
    let wants = |t: &str| all || targets.iter().any(|x| x == t);

    println!(
        "custody figures — jobs/app={} seed={} sizes={:?}\n",
        opts.jobs_per_app, opts.seed, opts.sizes
    );

    // Figs 7–10 share one sweep.
    if wants("fig7") || wants("fig8") || wants("fig9") || wants("fig10") {
        let cells = run_sweep(&opts);
        if wants("fig7") {
            println!("{}", fig7_table(&cells));
        }
        if wants("fig8") {
            println!("{}", fig8_table(&cells));
        }
        if wants("fig9") {
            println!("{}", fig9_table(&cells));
        }
        if wants("fig10") {
            println!("{}", fig10_table(&cells));
        }
        println!("{}", allocator_cost_summary(&cells));
    }
    if wants("fig7-fixed") || wants("fig7") {
        println!("{}", fig7_fixed_quota_table(&opts));
    }
    if wants("ablations") {
        println!("{}", ablation_intra_table(&opts));
        println!("{}", ablation_inter_table(&opts));
        println!("{}", ablation_placement_table(&opts));
        println!("{}", ablation_delay_table(&opts));
        println!("{}", ablation_speculation_table(&opts));
    }
    if wants("chaos") {
        println!("{}", chaos_table(&opts));
    }
    if wants("partition") {
        println!("{}", partition_table(&opts));
    }
    if wants("durability") {
        println!("{}", durability_table(&opts));
    }
    if wants("detector") {
        println!("{}", detector_table(&opts));
    }
    if wants("failslow") {
        println!("{}", failslow_table(&opts));
    }
    if wants("demotion") {
        println!("{}", demotion_table(&opts));
    }
    if wants("theory") {
        println!("{}", theory_quality_table(500, opts.seed));
    }
}
