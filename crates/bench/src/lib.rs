#![warn(missing_docs)]

//! # custody-bench
//!
//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation section (§VI) from the simulator, plus the ablation
//! studies DESIGN.md calls out.
//!
//! Two entry points:
//!
//! * the `figures` binary — `cargo run --release -p custody-bench --bin
//!   figures -- all` prints every figure's rows;
//! * the Criterion benches under `benches/` — one per figure/ablation,
//!   each printing its table once and then timing the underlying
//!   simulation or algorithm.
//!
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! not 100 Linode VMs); the *shape* — who wins, by roughly what factor,
//! and how trends move with cluster size — is the reproduction target.
//! EXPERIMENTS.md records paper-vs-measured for every row.

pub mod scale;
pub use scale::{scale_config, synthetic_round_view};

use custody_core::theory::{exact_max_local_jobs, greedy_local_jobs, roundrobin_local_jobs};
use custody_core::AllocatorKind;
use custody_sim::experiment::{locality_and_jct_sweep, ComparisonCell, PAPER_CLUSTER_SIZES};
use custody_sim::report::{pct_mean_std, render_table};
use custody_sim::{PlacementKind, QuotaMode, SimConfig, Simulation, WorkloadKind};
use custody_simcore::SimRng;

/// Options shared by all figure generators.
#[derive(Debug, Clone)]
pub struct FigureOptions {
    /// Jobs per application (the paper uses 30).
    pub jobs_per_app: usize,
    /// Master seed.
    pub seed: u64,
    /// Cluster sizes to sweep.
    pub sizes: Vec<usize>,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            jobs_per_app: 30,
            seed: 42,
            sizes: PAPER_CLUSTER_SIZES.to_vec(),
        }
    }
}

impl FigureOptions {
    /// A scaled-down variant for quick checks and CI.
    pub fn quick() -> Self {
        FigureOptions {
            jobs_per_app: 5,
            seed: 42,
            sizes: vec![25, 50, 100],
        }
    }
}

/// Runs the Fig. 7/8 sweep once (shared by both figures).
pub fn run_sweep(opts: &FigureOptions) -> Vec<ComparisonCell> {
    locality_and_jct_sweep(&opts.sizes, opts.jobs_per_app, opts.seed)
}

/// Fig. 7: data locality of input tasks, Custody vs the Spark baseline,
/// per workload and cluster size.
pub fn fig7_table(cells: &[ComparisonCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let (cu, ba) = c.locality();
            vec![
                c.num_nodes.to_string(),
                c.workload.name().to_string(),
                pct_mean_std(&cu),
                pct_mean_std(&ba),
                format!("{:+.2} pp", c.locality_gain_points()),
            ]
        })
        .collect();
    format!(
        "Fig. 7 — % local input tasks (mean ± std per job)\n{}",
        render_table(
            &["nodes", "workload", "custody", "spark-static", "gain"],
            &rows
        )
    )
}

/// Fig. 7 companion: the fixed-per-app-capacity regime in which the
/// baseline's locality decays with cluster size exactly as §VI-C
/// describes, while Custody stays insensitive.
pub fn fig7_fixed_quota_table(opts: &FigureOptions) -> String {
    let quota = QuotaMode::FixedPerApp(12);
    let mut rows = Vec::new();
    for &n in &opts.sizes {
        {
            let workload = WorkloadKind::Sort;
            let mut cfg =
                SimConfig::paper(workload, n, AllocatorKind::Custody, opts.seed).with_quota(quota);
            cfg.campaign = cfg.campaign.with_jobs_per_app(opts.jobs_per_app);
            let custody = Simulation::run(&cfg).cluster_metrics;
            let baseline =
                Simulation::run(&cfg.clone().with_allocator(AllocatorKind::StaticSpread))
                    .cluster_metrics;
            rows.push(vec![
                n.to_string(),
                workload.name().to_string(),
                pct_mean_std(&custody.input_locality()),
                pct_mean_std(&baseline.input_locality()),
                format!(
                    "{:+.2} pp",
                    (custody.input_locality().mean() - baseline.input_locality().mean()) * 100.0
                ),
            ]);
        }
    }
    format!(
        "Fig. 7 (fixed per-app capacity = 12 executors) — baseline locality decays with size\n{}",
        render_table(
            &["nodes", "workload", "custody", "spark-static", "gain"],
            &rows
        )
    )
}

/// Where the driver's time went: cumulative allocator wall time, executed
/// rounds, and rounds the incremental engine skipped outright, aggregated
/// over a sweep's runs. Printed by the `figures` binary so regressions in
/// allocator cost show up next to the figures they would distort.
pub fn allocator_cost_summary(cells: &[ComparisonCell]) -> String {
    let line = |name: &str, pick: &dyn Fn(&ComparisonCell) -> &custody_sim::RunMetrics| {
        let wall: f64 = cells.iter().map(|c| pick(c).allocator_wall_secs).sum();
        let rounds: usize = cells.iter().map(|c| pick(c).allocation_rounds).sum();
        let skipped: usize = cells.iter().map(|c| pick(c).rounds_skipped).sum();
        format!(
            "  {name:<14} {:>9.1} ms allocator wall  {rounds:>8} rounds ({:.2} µs/round)  {skipped} skipped\n",
            wall * 1e3,
            wall * 1e6 / rounds.max(1) as f64,
        )
    };
    format!(
        "Allocator cost across the sweep ({} runs per system):\n{}{}",
        cells.len(),
        line("custody", &|c| &c.custody),
        line("spark-static", &|c| &c.baseline),
    )
}

/// Fig. 8: average job completion times.
pub fn fig8_table(cells: &[ComparisonCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.num_nodes.to_string(),
                c.workload.name().to_string(),
                format!("{:.2} s", c.custody.job_completion_secs().mean()),
                format!("{:.2} s", c.baseline.job_completion_secs().mean()),
                format!("{:+.2} %", c.jct_reduction_pct()),
            ]
        })
        .collect();
    format!(
        "Fig. 8 — average job completion time\n{}",
        render_table(
            &["nodes", "workload", "custody", "spark-static", "reduction"],
            &rows
        )
    )
}

/// Fig. 9: average completion time of map (input) stages in the largest
/// cluster.
pub fn fig9_table(cells: &[ComparisonCell]) -> String {
    let largest = cells.iter().map(|c| c.num_nodes).max().unwrap_or(0);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .filter(|c| c.num_nodes == largest)
        .map(|c| {
            vec![
                c.workload.name().to_string(),
                format!("{:.2} s", c.custody.input_stage_secs().mean()),
                format!("{:.2} s", c.baseline.input_stage_secs().mean()),
                format!("{:+.2} %", c.input_stage_reduction_pct()),
            ]
        })
        .collect();
    format!(
        "Fig. 9 — average input (map) stage completion time, {largest}-node cluster\n{}",
        render_table(&["workload", "custody", "spark-static", "reduction"], &rows)
    )
}

/// Fig. 10: average scheduler delay vs cluster size (aggregated across
/// workloads, as the paper plots one curve per system).
pub fn fig10_table(cells: &[ComparisonCell]) -> String {
    let mut rows = Vec::new();
    let mut sizes: Vec<usize> = cells.iter().map(|c| c.num_nodes).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for n in sizes {
        let of_size: Vec<&ComparisonCell> = cells.iter().filter(|c| c.num_nodes == n).collect();
        let mean = |f: &dyn Fn(&ComparisonCell) -> f64| {
            of_size.iter().map(|c| f(c)).sum::<f64>() / of_size.len().max(1) as f64
        };
        let custody = mean(&|c: &ComparisonCell| c.scheduler_delays().0);
        let baseline = mean(&|c: &ComparisonCell| c.scheduler_delays().1);
        let custody_q = mean(&|c: &ComparisonCell| c.custody.queueing_delay_secs().mean());
        let baseline_q = mean(&|c: &ComparisonCell| c.baseline.queueing_delay_secs().mean());
        rows.push(vec![
            n.to_string(),
            format!("{:.1} ms", custody * 1000.0),
            format!("{:.1} ms", baseline * 1000.0),
            format!("{:.2} s", custody_q),
            format!("{:.2} s", baseline_q),
        ]);
    }
    format!(
        "Fig. 10 — average scheduler delay (locality wait while an executor idled),\n\
         plus total queueing delay (runnable → launch) for context\n{}",
        render_table(
            &[
                "nodes",
                "custody",
                "spark-static",
                "custody-queue",
                "spark-queue"
            ],
            &rows
        )
    )
}

/// One ablation comparison at the paper's 100-node scale.
fn ablation_run(
    workload: WorkloadKind,
    allocator: AllocatorKind,
    opts: &FigureOptions,
    placement: PlacementKind,
) -> custody_sim::RunMetrics {
    let mut cfg = SimConfig::paper(workload, 100, allocator, opts.seed).with_placement(placement);
    cfg.campaign = cfg.campaign.with_jobs_per_app(opts.jobs_per_app);
    Simulation::run(&cfg).cluster_metrics
}

/// One ablation comparison under locality scarcity — the Fig. 3/4 regime
/// where "the resources in a cluster ... may become too scarce to satisfy
/// the locality requirements from all the jobs" (§IV-A): single-replica
/// blocks (each block lives on exactly one node, like the worked
/// examples), a tight 8-executor quota per application, and a zero-wait
/// task scheduler so locality missed at allocation time is never
/// recovered by waiting. Here the allocation *strategy* alone decides
/// which jobs end up local.
fn scarce_run(
    workload: WorkloadKind,
    allocator: AllocatorKind,
    opts: &FigureOptions,
) -> custody_sim::RunMetrics {
    use custody_scheduler::SchedulerKind;
    let mut cfg = SimConfig::paper(workload, 50, allocator, opts.seed)
        .with_quota(QuotaMode::FixedPerApp(8))
        .with_scheduler(SchedulerKind::LocalityFirst);
    cfg.cluster = cfg.cluster.with_replication(1);
    cfg.campaign = cfg.campaign.with_jobs_per_app(opts.jobs_per_app);
    Simulation::run(&cfg).cluster_metrics
}

/// Ablation: priority vs fairness-based intra-application allocation
/// (Fig. 4/5 at scale).
pub fn ablation_intra_table(opts: &FigureOptions) -> String {
    let mut rows = Vec::new();
    for workload in WorkloadKind::ALL {
        let prio = scarce_run(workload, AllocatorKind::Custody, opts);
        let fair = scarce_run(workload, AllocatorKind::CustodyFairIntra, opts);
        rows.push(vec![
            workload.name().to_string(),
            format!("{:.1} %", prio.min_local_job_fraction() * 100.0),
            format!("{:.1} %", fair.min_local_job_fraction() * 100.0),
            format!("{:.2} s", prio.job_completion_secs().mean()),
            format!("{:.2} s", fair.job_completion_secs().mean()),
        ]);
    }
    let end_to_end = render_table(
        &[
            "workload",
            "min-local-jobs prio",
            "min-local-jobs fair",
            "jct prio",
            "jct fair",
        ],
        &rows,
    );
    // One-shot allocation rounds (the Fig. 4 setting proper): random
    // instances with a tight budget, priority vs round-robin fairness.
    let mut rng = SimRng::seed_from_u64(opts.seed);
    let (mut prio_jobs, mut fair_jobs) = (0usize, 0usize);
    let trials = 1000;
    for _ in 0..trials {
        let num_exec = 8;
        let jobs: Vec<Vec<Vec<usize>>> = (0..2 + rng.below(3))
            .map(|_| {
                let tasks = 1 + rng.below(4);
                (0..tasks)
                    .map(|_| {
                        let replicas = 1 + rng.below(2);
                        rng.choose_distinct(num_exec, replicas)
                    })
                    .collect()
            })
            .collect();
        let budget = 2 + rng.below(4);
        prio_jobs += greedy_local_jobs(&jobs, num_exec, budget).local_jobs;
        fair_jobs += roundrobin_local_jobs(&jobs, num_exec, budget).local_jobs;
    }
    format!(
        "Ablation (intra-app): fewest-tasks-first priority vs round-robin fairness, scarce quota (8 executors/app, 50 nodes)\n{end_to_end}\n\
         One-shot allocation rounds ({trials} random instances, tight budget): \
         fully-local jobs priority {prio_jobs} vs fairness {fair_jobs} ({:+.1} %)\n",
        100.0 * (prio_jobs as f64 - fair_jobs as f64) / fair_jobs.max(1) as f64
    )
}

/// Ablation: min-locality vs naive count-fair inter-application selection
/// (Fig. 3 at scale). Reports the fairness of the locality distribution.
pub fn ablation_inter_table(opts: &FigureOptions) -> String {
    let mut rows = Vec::new();
    for workload in WorkloadKind::ALL {
        let locality = scarce_run(workload, AllocatorKind::Custody, opts);
        let naive = scarce_run(workload, AllocatorKind::CustodyNaiveInter, opts);
        let jain = |m: &custody_sim::RunMetrics| {
            custody_core::fairness::jain_index(&m.local_job_fractions()).unwrap_or(0.0)
        };
        rows.push(vec![
            workload.name().to_string(),
            format!("{:.1} %", locality.min_local_job_fraction() * 100.0),
            format!("{:.1} %", naive.min_local_job_fraction() * 100.0),
            format!("{:.4}", jain(&locality)),
            format!("{:.4}", jain(&naive)),
        ]);
    }
    format!(
        "Ablation (inter-app): min-locality vs naive count-fair selection, scarce quota (8 executors/app, 50 nodes)\n{}",
        render_table(
            &[
                "workload",
                "min-local-jobs custody",
                "min-local-jobs naive",
                "jain custody",
                "jain naive"
            ],
            &rows
        )
    )
}

/// Ablation: replica placement policies under Custody (§VII: popularity-
/// based replication "will further enhance the performance of Custody").
pub fn ablation_placement_table(opts: &FigureOptions) -> String {
    let mut rows = Vec::new();
    for placement in [PlacementKind::Random, PlacementKind::Popularity] {
        for allocator in [AllocatorKind::Custody, AllocatorKind::StaticSpread] {
            let m = ablation_run(WorkloadKind::Sort, allocator, opts, placement);
            rows.push(vec![
                placement.name().to_string(),
                allocator.name().to_string(),
                pct_mean_std(&m.input_locality()),
                format!("{:.2} s", m.job_completion_secs().mean()),
            ]);
        }
    }
    format!(
        "Ablation (placement): replica placement × allocator, Sort, 100 nodes\n{}",
        render_table(&["placement", "allocator", "locality", "jct"], &rows)
    )
}

/// Ablation: delay-scheduling wait threshold sweep with and without
/// Custody (§V interaction).
pub fn ablation_delay_table(opts: &FigureOptions) -> String {
    use custody_scheduler::SchedulerKind;
    use custody_simcore::SimDuration;
    let mut rows = Vec::new();
    for wait_ms in [0u64, 1_000, 3_000, 10_000] {
        for allocator in [AllocatorKind::Custody, AllocatorKind::StaticSpread] {
            let mut cfg = SimConfig::paper(WorkloadKind::Sort, 100, allocator, opts.seed)
                .with_scheduler(SchedulerKind::Delay(SimDuration::from_millis(wait_ms)));
            cfg.campaign = cfg.campaign.with_jobs_per_app(opts.jobs_per_app);
            let m = Simulation::run(&cfg).cluster_metrics;
            rows.push(vec![
                format!("{:.1} s", wait_ms as f64 / 1000.0),
                allocator.name().to_string(),
                pct_mean_std(&m.input_locality()),
                format!("{:.2} s", m.job_completion_secs().mean()),
                format!("{:.1} ms", m.scheduler_delay_secs().mean() * 1000.0),
            ]);
        }
    }
    format!(
        "Ablation (delay scheduling): locality-wait threshold × allocator, Sort, 100 nodes\n{}",
        render_table(
            &["wait", "allocator", "locality", "jct", "sched-delay"],
            &rows
        )
    )
}

/// Ablation: speculative execution (the §IV-B straggler-mitigation
/// extension) on a congested cluster, with and without Custody — does
/// cloning stragglers recover what locality misses?
pub fn ablation_speculation_table(opts: &FigureOptions) -> String {
    use custody_scheduler::speculation::SpeculationConfig;
    let mut rows = Vec::new();
    for speculation in [None, Some(SpeculationConfig::default())] {
        for allocator in [AllocatorKind::Custody, AllocatorKind::StaticSpread] {
            let mut cfg = SimConfig::paper(WorkloadKind::Sort, 25, allocator, opts.seed);
            cfg.campaign = cfg.campaign.with_jobs_per_app(opts.jobs_per_app);
            cfg.speculation = speculation;
            let m = Simulation::run(&cfg).cluster_metrics;
            rows.push(vec![
                if speculation.is_some() { "on" } else { "off" }.to_string(),
                allocator.name().to_string(),
                format!("{:.2} s", m.job_completion_secs().mean()),
                format!("{:.2} s", m.input_stage_secs().mean()),
                m.tasks_speculated.to_string(),
            ]);
        }
    }
    format!(
        "Ablation (speculation): straggler cloning × allocator, Sort, congested 25 nodes\n{}",
        render_table(
            &["speculation", "allocator", "jct", "input-stage", "clones"],
            &rows
        )
    )
}

/// Chaos sweep: Custody vs the Spark baseline under an increasingly
/// violent stochastic fault process (node crash/recovery cycles,
/// executor-only faults, transient network degradation). Reports
/// locality degradation relative to a calm run, fault counts, and the
/// fault-to-stable recovery time — the §VII fault-tolerance story.
pub fn chaos_table(opts: &FigureOptions) -> String {
    use custody_sim::experiment::chaos_sweep;
    // The congested regime: the smallest paper cluster is where faults
    // actually displace running tasks (larger clusters shrug them off).
    let nodes = opts.sizes.iter().copied().min().unwrap_or(25).min(25);
    let mtbfs = [120.0, 60.0, 30.0, 15.0];
    let (custody_calm, baseline_calm, cells) =
        chaos_sweep(nodes, opts.jobs_per_app, &mtbfs, opts.seed);
    let mut rows = vec![vec![
        "calm".to_string(),
        pct_mean_std(&custody_calm.input_locality()),
        pct_mean_std(&baseline_calm.input_locality()),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]];
    for cell in &cells {
        let (dc, db) = cell.locality_degradation_points(&custody_calm, &baseline_calm);
        let (rc, rb) = cell.recovery_secs();
        let m = &cell.custody;
        rows.push(vec![
            format!("{:.0} s", cell.mtbf_secs),
            pct_mean_std(&m.input_locality()),
            pct_mean_std(&cell.baseline.input_locality()),
            format!("{dc:+.2} / {db:+.2} pp"),
            format!(
                "{}+{} dn, {} up, {} req",
                m.nodes_failed, m.executor_faults, m.nodes_recovered, m.tasks_requeued
            ),
            format!("{rc:.1} / {rb:.1} s"),
        ]);
    }
    format!(
        "Chaos sweep — locality under stochastic faults, WordCount, {nodes} nodes\n\
         (degradation = locality lost vs the calm run; recovery = mean fault-to-stable time)\n{}",
        render_table(
            &[
                "mtbf",
                "custody",
                "spark-static",
                "degradation c/s",
                "faults (custody)",
                "recovery c/s"
            ],
            &rows
        )
    )
}

/// Partition sweep: Custody vs the Spark baseline under seeded network
/// partitions — clean splits, asymmetric cuts, and flapping links over a
/// grid of (split fraction × mean heal time). Reports JCT stretch
/// relative to a partition-free run on the same control plane, the
/// split-brain fencing counters (deferred and fenced minority Finish
/// reports, minority work discarded at reconnect), and the mean
/// heal-to-reconverge time — the rejoin-reconciliation story.
pub fn partition_table(opts: &FigureOptions) -> String {
    use custody_sim::experiment::partition_sweep;
    // The congested regime again: on the smallest paper cluster a cut
    // actually strands running work behind the split.
    let nodes = opts.sizes.iter().copied().min().unwrap_or(25).min(25);
    let splits = [0.2, 0.4];
    let heals = [5.0, 15.0];
    let (custody_calm, baseline_calm, cells) =
        partition_sweep(nodes, opts.jobs_per_app, &splits, &heals, opts.seed);
    let mut rows = vec![vec![
        "calm".to_string(),
        "-".to_string(),
        format!(
            "{:.2} / {:.2} s",
            custody_calm.job_completion_secs().mean(),
            baseline_calm.job_completion_secs().mean()
        ),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]];
    for cell in &cells {
        let (sc, sb) = cell.jct_stretch_pct(&custody_calm, &baseline_calm);
        let (rc, rb) = cell.reconverge_secs();
        let (fc, fb) = cell.fenced_finishes();
        let m = &cell.custody;
        rows.push(vec![
            format!("{:.0} %", cell.split_fraction * 100.0),
            format!("{:.0} s", cell.mean_heal_secs),
            format!(
                "{:.2} / {:.2} s",
                m.job_completion_secs().mean(),
                cell.baseline.job_completion_secs().mean()
            ),
            format!("{sc:+.1} / {sb:+.1} %"),
            format!(
                "{} ep, {} def",
                m.partition_episodes, m.partition_finishes_deferred
            ),
            format!("{fc} / {fb} fenced, {} disc", m.partition_work_discarded),
            format!("{rc:.1} / {rb:.1} s"),
        ]);
    }
    format!(
        "Partition sweep — network cuts by split fraction and heal time, WordCount, {nodes} nodes\n\
         (stretch = mean-JCT inflation vs the partition-free run; fenced = split-brain Finish\n\
         reports the epoch fence rejected; reconverge = heal-to-settled belief time)\n{}",
        render_table(
            &[
                "split",
                "heal",
                "jct c/s",
                "stretch c/s",
                "episodes (custody)",
                "fencing c/s",
                "reconverge c/s"
            ],
            &rows
        )
    )
}

/// Durability sweep: the background scrubber + unified prioritized
/// repair pipeline on vs off across injected latent-corruption rates,
/// each also running the same ongoing arrival process. Reports blocks
/// permanently lost and left at risk, the mean corruption-onset-to-
/// detection latency, repair traffic, and the mean-JCT overhead relative
/// to a corruption-free run — the data-durability story: scrubbing
/// dominates on loss at every rate, and the overhead it costs is the
/// price of that durability.
pub fn durability_table(opts: &FigureOptions) -> String {
    use custody_sim::experiment::durability_sweep;
    // The congested regime: on the smallest paper cluster every block
    // hosts live work, so rot is felt rather than shrugged off.
    let nodes = opts.sizes.iter().copied().min().unwrap_or(25).min(25);
    let rates = [0.15, 0.2, 0.3];
    let (calm, cells) = durability_sweep(nodes, opts.jobs_per_app, &rates, opts.seed);
    let mut rows = vec![vec![
        "calm".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.2} s", calm.job_completion_secs().mean()),
        "-".to_string(),
    ]];
    for cell in &cells {
        let (lo, lf) = cell.permanently_lost();
        let (dl, df) = cell.detection_secs();
        let (jo, jf) = cell.jct_overhead_pct(&calm);
        rows.push(vec![
            format!("{:.0} %", cell.latent_fraction * 100.0),
            format!("{lo} / {lf}"),
            format!(
                "{} / {}",
                cell.scrub_on.blocks_at_risk, cell.scrub_off.blocks_at_risk
            ),
            format!("{dl:.1} / {df:.1} s"),
            format!(
                "{} / {}",
                cell.scrub_on.replicas_repaired, cell.scrub_off.replicas_repaired
            ),
            format!(
                "{:.2} / {:.2} s",
                cell.scrub_on.job_completion_secs().mean(),
                cell.scrub_off.job_completion_secs().mean()
            ),
            format!("{jo:+.1} / {jf:+.1} %"),
        ]);
    }
    format!(
        "Durability sweep — scrub + prioritized repair on/off by latent rot rate, WordCount, {nodes} nodes\n\
         (lost = blocks with zero intact replicas at end of run; at risk = down to a sole intact copy;\n\
         detect = mean onset-to-detection latency; overhead = mean-JCT inflation vs the rot-free run)\n{}",
        render_table(
            &[
                "rot",
                "lost on/off",
                "at risk on/off",
                "detect on/off",
                "repairs on/off",
                "jct on/off",
                "overhead on/off"
            ],
            &rows
        )
    )
}

/// Detector sweep: the modeled control plane (lossy heartbeats,
/// suspicion timeouts, leases, epoch fencing, master checkpoint/WAL
/// recovery) vs oracle failure knowledge, on the same chaos schedule.
/// Shows what imperfect detection costs — false suspicions, detection
/// latency, lease revocations, lost blocks — and what it does to the
/// paper's headline metrics.
pub fn detector_table(opts: &FigureOptions) -> String {
    use custody_sim::experiment::detector_sweep;
    let nodes = opts.sizes.iter().copied().min().unwrap_or(25).min(25);
    let drops = [0.0, 0.05, 0.2, 0.5];
    let (oracle, cells) = detector_sweep(nodes, opts.jobs_per_app, &drops, opts.seed);
    let row = |label: String, m: &custody_sim::RunMetrics| {
        vec![
            label,
            pct_mean_std(&m.input_locality()),
            format!("{:.2} s", m.job_completion_secs().mean()),
            m.false_suspicions.to_string(),
            if m.detection_latency_secs.count() > 0 {
                format!(
                    "{:.2} s ({})",
                    m.detection_latency_secs.mean(),
                    m.detection_latency_secs.count()
                )
            } else {
                "-".to_string()
            },
            m.leases_revoked.to_string(),
            m.blocks_lost.to_string(),
            m.master_recoveries.to_string(),
        ]
    };
    let mut rows = vec![row("oracle".to_string(), &oracle)];
    for cell in &cells {
        rows.push(row(
            format!("{:.0} %", cell.drop_probability * 100.0),
            &cell.metrics,
        ));
    }
    format!(
        "Detector sweep — oracle vs modeled control plane by heartbeat drop rate,\n\
         WordCount, {nodes} nodes (checkpoints + master crashes on in every modeled row)\n{}",
        render_table(
            &[
                "hb drop",
                "locality",
                "jct",
                "false-susp",
                "det-latency",
                "leases-rev",
                "blocks-lost",
                "recoveries"
            ],
            &rows
        )
    )
}

/// Fail-slow sweep: gray failures (limping disks, NICs, CPUs plus
/// transient task faults) at increasing sick fractions, Custody vs the
/// baseline, with the peer-relative health detector on vs off. Shows
/// what detection buys (JCT with quarantine + demotion vs riding the
/// slowdown out) and what it costs (false quarantines, capacity held in
/// probation). Every variant is averaged over five seeds — which node
/// sickens decides how much quarantine pays, so single runs are noisy.
pub fn failslow_table(opts: &FigureOptions) -> String {
    use custody_sim::experiment::failslow_sweep;
    // The latency-sensitive regime: a small cluster with headroom. In a
    // deeply queued batch, makespan is pure throughput and excluding a
    // half-useful slow node always costs; with spare capacity the
    // exclusion is free and detection shows its real value — killing
    // stragglers before they stretch every job's tail.
    let nodes = opts.sizes.iter().copied().min().unwrap_or(10).min(10);
    let fractions = [0.0, 0.1, 0.2, 0.3];
    let seeds = [
        opts.seed,
        opts.seed + 1,
        opts.seed + 2,
        opts.seed + 3,
        opts.seed + 4,
    ];
    let cells = failslow_sweep(nodes, opts.jobs_per_app.min(8), &fractions, &seeds);
    let mut rows = Vec::new();
    for cell in &cells {
        let (gc, gb) = cell.detection_jct_gain_pct();
        let on = &cell.custody_on;
        rows.push(vec![
            format!("{:.0} %", cell.sick_fraction * 100.0),
            format!(
                "{:.2} / {:.2} s",
                on.jct.mean(),
                cell.custody_off.jct.mean()
            ),
            format!(
                "{:.2} / {:.2} s",
                cell.baseline_on.jct.mean(),
                cell.baseline_off.jct.mean()
            ),
            format!("{gc:+.1} / {gb:+.1} %"),
            pct_mean_std(&on.locality),
            format!("{} ({} false)", on.quarantines, on.false_quarantines),
            if on.quarantine_latency.count() > 0 {
                format!("{:.1} s", on.quarantine_latency.mean())
            } else {
                "-".to_string()
            },
            format!("{} retry, {} failed", on.task_retries, on.jobs_failed),
        ]);
    }
    format!(
        "Fail-slow sweep — gray failures by sick fraction, WordCount, {nodes} nodes,\n\
         5 seeds per cell (jct on/off = health detection enabled/disabled; gain = mean-JCT\n\
         reduction from detection, positive = quarantine paid off)\n{}",
        render_table(
            &[
                "sick",
                "custody jct on/off",
                "spark jct on/off",
                "det gain c/s",
                "locality (on)",
                "quarantines",
                "q-latency",
                "faults (custody on)"
            ],
            &rows
        )
    )
}

/// Soft-vs-hard demotion sweep: busy Custody batches under lingering
/// suspect-band gray failures (2–4x slowdowns that never look dead
/// enough to quarantine), comparing cost-based soft demotion (suspect
/// nodes get a worse rational key but stay offerable, graded by how
/// sick they look) against binary hard demotion (every suspect equally
/// last in the filler, locality and replica picks health-blind). The
/// per-cell effect is small — a work-conserving cluster self-paces its
/// slow executors — so every variant is averaged over 24 seeds; what
/// remains is the steering gain: soft places local tasks on the healthy
/// replica and prefers the mildly limping CPU over the badly limping
/// disk, which a binary verdict cannot express.
pub fn demotion_table(opts: &FigureOptions) -> String {
    use custody_sim::experiment::demotion_sweep;
    let nodes = 20;
    let fractions = [0.0, 0.1, 0.2, 0.3];
    let seeds: Vec<u64> = (0..24).map(|i| opts.seed + i).collect();
    let cells = demotion_sweep(nodes, opts.jobs_per_app.max(8), &fractions, &seeds);
    let mut rows = Vec::new();
    for cell in &cells {
        rows.push(vec![
            format!("{:.0} %", cell.sick_fraction * 100.0),
            format!("{:.2} s", cell.soft.jct.mean()),
            format!("{:.2} s", cell.hard.jct.mean()),
            format!("{:+.1} %", cell.soft_gain_pct()),
            format!("{:+.2} pp", cell.soft_locality_gain_points()),
            cell.soft.onsets.to_string(),
            format!("{} / {}", cell.soft.task_retries, cell.hard.task_retries),
        ]);
    }
    format!(
        "Demotion sweep — soft (cost-based) vs hard (binary) demotion of suspect nodes,\n\
         WordCount, {nodes} nodes, 24 seeds per cell, quarantine out of reach (gain =\n\
         mean-JCT reduction from soft demotion, positive = pricing beat banishing)\n{}",
        render_table(
            &[
                "sick",
                "soft jct",
                "hard jct",
                "soft gain",
                "locality Δ",
                "onsets",
                "retries s/h"
            ],
            &rows
        )
    )
}

/// Theory check: the greedy strategy of Algorithm 2 vs the exact optima
/// on random intra-application instances.
///
/// Two guarantees are verified empirically:
/// * **task level** — the greedy matching is maximal within its budget,
///   so it matches at least half of `min(budget, Hopcroft–Karp optimum)`
///   tasks (the classic maximal-matching ½ bound, which underlies the
///   paper's 2-approximation for the weighted objective of Eq. 9);
/// * **job level** — aggregate quality vs the exhaustive optimum. No
///   per-instance factor is guaranteed for whole-job counts (a partial
///   match of a small job can block a completable big one), which the
///   report shows honestly.
pub fn theory_quality_table(trials: usize, seed: u64) -> String {
    use custody_core::theory::hopcroft_karp;
    let mut rng = SimRng::seed_from_u64(seed);
    let mut worst_task_ratio: f64 = 1.0;
    let mut greedy_jobs_total = 0usize;
    let mut exact_jobs_total = 0usize;
    for _ in 0..trials {
        let num_exec = 8;
        let num_jobs = 2 + rng.below(4);
        let jobs: Vec<Vec<Vec<usize>>> = (0..num_jobs)
            .map(|_| {
                let tasks = 1 + rng.below(3);
                (0..tasks)
                    .map(|_| {
                        let replicas = 1 + rng.below(2);
                        rng.choose_distinct(num_exec, replicas)
                    })
                    .collect()
            })
            .collect();
        let budget = 2 + rng.below(num_exec - 1);
        let greedy = greedy_local_jobs(&jobs, num_exec, budget);
        let exact_jobs = exact_max_local_jobs(&jobs, num_exec, budget);
        greedy_jobs_total += greedy.local_jobs;
        exact_jobs_total += exact_jobs;
        let adj: Vec<Vec<usize>> = jobs.iter().flat_map(|j| j.iter().cloned()).collect();
        let (hk, _) = hopcroft_karp(&adj, num_exec);
        let task_bound = hk.min(budget);
        if task_bound > 0 {
            worst_task_ratio = worst_task_ratio.min(greedy.local_tasks as f64 / task_bound as f64);
        }
    }
    format!(
        "Theory — greedy (Algorithm 2) vs exact optima over {trials} random instances\n\
         local jobs (aggregate): greedy {greedy_jobs_total} vs exhaustive {exact_jobs_total} \
         ({:.1} % of optimum)\n\
         local tasks: worst greedy/min(budget, Hopcroft-Karp) ratio {:.2} (maximal-matching bound 0.50)\n",
        100.0 * greedy_jobs_total as f64 / exact_jobs_total.max(1) as f64,
        worst_task_ratio
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FigureOptions {
        FigureOptions {
            jobs_per_app: 1,
            seed: 7,
            sizes: vec![10],
        }
    }

    #[test]
    fn sweep_and_tables_render() {
        let cells = run_sweep(&tiny());
        assert_eq!(cells.len(), 3);
        let f7 = fig7_table(&cells);
        assert!(f7.contains("Fig. 7"));
        assert!(f7.contains("pagerank"));
        let f8 = fig8_table(&cells);
        assert!(f8.contains("reduction"));
        let f9 = fig9_table(&cells);
        assert!(f9.contains("10-node"));
        let f10 = fig10_table(&cells);
        assert!(f10.contains("ms"));
    }

    #[test]
    fn theory_quality_is_within_bound() {
        let t = theory_quality_table(50, 3);
        assert!(t.contains("bound 0.50"));
        // Parse the worst task-level ratio and check the maximal-matching
        // 1/2 bound.
        let ratio: f64 = t
            .split("ratio ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.trim().parse().ok())
            .expect("table contains ratio");
        assert!(ratio >= 0.5 - 1e-9, "greedy fell below 1/2: {ratio}");
    }
}
