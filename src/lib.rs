#![warn(missing_docs)]

//! # custody — data-aware executor allocation for big-data clusters
//!
//! Facade crate for the reproduction of *"Custody: Towards Data-Aware
//! Resource Sharing in Cloud-Based Big Data Processing"* (Ma, Jiang, Li, Li
//! — IEEE CLUSTER 2016). It re-exports the workspace crates under stable
//! module names so downstream users depend on a single crate:
//!
//! * [`simcore`] — deterministic discrete-event simulation toolkit.
//! * [`dfs`] — HDFS-like distributed-file-system model (blocks, replicas,
//!   NameNode, placement policies).
//! * [`cluster`] — worker nodes, executors and the network model.
//! * [`workload`] — applications, jobs, tasks and the paper's three
//!   workloads (PageRank, WordCount, Sort).
//! * [`core`] — the paper's contribution: the Custody two-level
//!   data-aware executor allocator, the baseline cluster managers, and the
//!   flow/matching theory behind them.
//! * [`scheduler`] — in-application task schedulers (delay scheduling et al.).
//! * [`sim`] — the end-to-end cluster simulation driver and metrics.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use custody::prelude::*;
//!
//! let config = SimConfig::small_demo(42);
//! let outcome = Simulation::run(&config);
//! assert!(outcome.cluster_metrics.jobs_completed > 0);
//! ```

pub use custody_cluster as cluster;
pub use custody_core as core;
pub use custody_dfs as dfs;
pub use custody_scheduler as scheduler;
pub use custody_sim as sim;
pub use custody_simcore as simcore;
pub use custody_workload as workload;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use custody_cluster::{ClusterSpec, NetworkModel};
    pub use custody_core::{AllocatorKind, ExecutorAllocator};
    pub use custody_dfs::{NameNode, PlacementPolicy};
    pub use custody_scheduler::SchedulerKind;
    pub use custody_sim::{SimConfig, Simulation};
    pub use custody_simcore::{SimDuration, SimRng, SimTime};
    pub use custody_workload::WorkloadKind;
}
